"""Tests for the numpy GNN model and compute-shape derivation."""

import numpy as np
import pytest

from repro.gnn import (
    DenseFeatureTable,
    GnnLayer,
    GnnModel,
    minibatch_compute_shapes,
    ring_of_cliques,
    sample_minibatch,
    sample_subgraph,
)


def tiny_setup(hidden=8, dim=4, layers=2):
    graph = ring_of_cliques(3, 5)
    features = DenseFeatureTable.random(graph.num_nodes, dim, seed=0)
    model = GnnModel.random(dim, hidden, layers, seed=1)
    return graph, features, model


class TestGnnLayer:
    def test_apply_shape(self):
        layer = GnnLayer(np.ones((3, 4), np.float16), np.zeros(3, np.float16))
        out = layer.apply(np.ones((5, 4), np.float16))
        assert out.shape == (5, 3)
        assert out.dtype == np.float16

    def test_relu_clamps_negative(self):
        layer = GnnLayer(-np.ones((2, 2), np.float16), np.zeros(2, np.float16))
        out = layer.apply(np.ones((1, 2), np.float16))
        assert np.all(out == 0)

    def test_bias_added(self):
        layer = GnnLayer(np.zeros((2, 2), np.float16), np.array([1.5, 2.5], np.float16))
        out = layer.apply(np.zeros((1, 2), np.float16))
        assert list(out[0]) == [1.5, 2.5]

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            GnnLayer(np.zeros((2, 2), np.float16), np.zeros(3, np.float16))


class TestGnnModel:
    def test_forward_output_shape(self):
        graph, features, model = tiny_setup()
        sg = sample_subgraph(graph, 0, (3, 3), seed=2)
        out = model.forward_subgraph(sg, features)
        assert out.shape == (8,)
        assert out.dtype == np.float16

    def test_forward_deterministic(self):
        graph, features, model = tiny_setup()
        sg = sample_subgraph(graph, 0, (3, 3), seed=2)
        a = model.forward_subgraph(sg, features)
        b = model.forward_subgraph(sg, features)
        assert np.array_equal(a, b)

    def test_forward_depends_on_samples(self):
        graph, features, model = tiny_setup()
        a = model.forward_subgraph(sample_subgraph(graph, 0, (3, 3), seed=2), features)
        b = model.forward_subgraph(sample_subgraph(graph, 0, (3, 3), seed=3), features)
        assert not np.array_equal(a, b)

    def test_manual_one_layer_aggregation(self):
        """Hand-computed check: h = relu(W @ (x_self + sum(x_children)))."""
        graph = ring_of_cliques(2, 3)
        dim = 2
        feats = np.arange(graph.num_nodes * dim, dtype=np.float16).reshape(-1, dim)
        features = DenseFeatureTable(feats)
        w = np.eye(dim, dtype=np.float16)
        model = GnnModel([GnnLayer(w, np.zeros(dim, np.float16))])
        sg = sample_subgraph(graph, 0, (2,), seed=0)
        children = [n.node_id for n in sg.nodes.values() if n.depth == 1]
        expected = feats[0].astype(np.float32)
        for c in children:
            expected = expected + feats[c].astype(np.float32)
        out = model.forward_subgraph(sg, features)
        assert np.allclose(out.astype(np.float32), np.maximum(expected, 0), rtol=1e-2)

    def test_too_few_hops_rejected(self):
        graph, features, model = tiny_setup(layers=3)
        sg = sample_subgraph(graph, 0, (3, 3), seed=2)  # only 2 hops
        with pytest.raises(ValueError):
            model.forward_subgraph(sg, features)

    def test_minibatch_stacks(self):
        graph, features, model = tiny_setup()
        sgs = sample_minibatch(graph, [0, 1, 2], (3, 3), seed=1)
        out = model.forward_minibatch(sgs, features)
        assert out.shape == (3, 8)

    def test_layer_chain_validation(self):
        l1 = GnnLayer(np.zeros((4, 3), np.float16), np.zeros(4, np.float16))
        l2 = GnnLayer(np.zeros((4, 5), np.float16), np.zeros(4, np.float16))
        with pytest.raises(ValueError):
            GnnModel([l1, l2])

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            GnnModel([])


class TestComputeShapes:
    def test_paper_configuration(self):
        """3 hops, fanout 3, K=3 layers, batch B.

        Layer 1 updates positions at depths 0..2 (1+3+9=13 per target);
        layer 2 depths 0..1 (4); layer 3 depth 0 (1).
        """
        shapes = minibatch_compute_shapes(
            batch_size=64, fanouts=(3, 3, 3), feature_dim=200, hidden_dim=128, num_layers=3
        )
        assert [s.gemm[0] for s in shapes] == [13 * 64, 4 * 64, 1 * 64]
        assert shapes[0].gemm[1:] == (200, 128)
        assert shapes[1].gemm[1:] == (128, 128)
        # layer-1 aggregation touches every edge of the 40-node tree
        assert shapes[0].agg_vectors == (3 + 9 + 27) * 64

    def test_single_layer(self):
        shapes = minibatch_compute_shapes(1, (5,), 10, 7, 1)
        assert len(shapes) == 1
        assert shapes[0].gemm == (1, 10, 7)
        assert shapes[0].agg_vectors == 5

    def test_layers_exceeding_hops_rejected(self):
        with pytest.raises(ValueError):
            minibatch_compute_shapes(1, (3,), 10, 7, 2)
