"""Integration tests: the nine platforms reproduce the paper's shape.

One shared simulation sweep (module-scoped fixture) backs many
assertions, each checking a qualitative claim from the evaluation
section. Per-platform *invariants* (run completion, meter conservation,
payload round-trips, ...) live in ``test_platform_conformance.py``,
parametrized over the registry instead of hard-coded loops.
"""

import pytest

from repro.platforms import (
    PLATFORMS,
    PreparedWorkload,
    run_platform,
)
from repro.ssd import traditional_ssd, ull_ssd
from repro.workloads import workload_by_name

BATCH = 32
NBATCH = 2


@pytest.fixture(scope="module")
def prepared():
    return PreparedWorkload.prepare(workload_by_name("amazon").scaled(2048))


@pytest.fixture(scope="module")
def results(prepared):
    return {
        name: run_platform(name, prepared, batch_size=BATCH, num_batches=NBATCH)
        for name in PLATFORMS
    }


def thr(results, name):
    return results[name].throughput_targets_per_sec


class TestFigure14Ordering:
    """Throughput ordering across the BG progression (Figure 14)."""

    def test_every_isc_design_beats_cc(self, results):
        base = thr(results, "cc")
        for name in ("glist", "smartsage", "bg1", "bg_dg", "bg_sp", "bg_dgsp", "bg2"):
            assert thr(results, name) > base, name

    def test_bg1_beats_individual_offloads(self, results):
        assert thr(results, "bg1") > thr(results, "glist")
        assert thr(results, "bg1") > thr(results, "smartsage")

    def test_smartsage_beats_glist(self, results):
        """Paper: SmartSage 2.11x vs GLIST 1.42x on average."""
        assert thr(results, "smartsage") > thr(results, "glist")

    def test_progressive_improvements(self, results):
        order = ["bg1", "bg_dg", "bg_sp", "bg_dgsp", "bg2"]
        # bg_dg vs bg_sp are both above bg1; the full chain below must
        # be monotone except the dg/sp pair which the paper also splits
        assert thr(results, "bg_dg") > thr(results, "bg1")
        assert thr(results, "bg_sp") > thr(results, "bg1")
        assert thr(results, "bg_dgsp") > thr(results, "bg_sp")
        assert thr(results, "bg_dgsp") > thr(results, "bg_dg")
        assert thr(results, "bg2") > thr(results, "bg_dgsp")

    def test_bg2_speedup_is_large(self, results):
        """Paper: up to 27.3x vs CC; ~21.7x on amazon. Assert order of
        magnitude rather than the absolute factor."""
        assert thr(results, "bg2") / thr(results, "cc") > 6.0

    def test_gids_between_cc_and_in_storage(self, results):
        """GPU-initiated direct storage drops the per-request host stack
        (so it beats CC) but still hauls whole pages over PCIe — the
        in-storage streaming designs stay well ahead."""
        assert thr(results, "gids") > thr(results, "cc")
        assert thr(results, "bg2") > 5 * thr(results, "gids")


class TestFigure15Utilization:
    def test_bg2_uses_more_dies_than_bg_sp(self, results):
        assert results["bg2"].mean_active_dies() > results["bg_sp"].mean_active_dies()

    def test_die_sampling_cuts_channel_traffic(self, results):
        """BG-SP transfers sampled data, BG-1 whole pages."""
        bg1_bytes = sum(t.busy_time() for t in results["bg1"].channel_trackers)
        bgsp_bytes = sum(t.busy_time() for t in results["bg_sp"].channel_trackers)
        assert bgsp_bytes < bg1_bytes / 2

    def test_latency_breakdown_categories(self, results):
        breakdown = results["cc"].latency_breakdown()
        for key in ("host", "pcie", "firmware", "flash_read", "dram", "accelerator"):
            assert key in breakdown
        # CC spends heavily on PCIe; BG-2 almost nothing
        assert breakdown["pcie"] > results["bg2"].latency_breakdown()["pcie"] * 5


class TestFigure16HopOverlap:
    def test_barrier_platforms_serialize_hops(self, results):
        for name in ("cc", "smartsage", "bg1", "bg_sp"):
            assert results[name].hop_timeline.overlap_fraction() < 0.5, name

    def test_directgraph_platforms_overlap_hops(self, results):
        for name in ("bg_dg", "bg_dgsp", "bg2"):
            assert results[name].hop_timeline.overlap_fraction() > 0.5, name


class TestFigure17CommandBreakdown:
    def test_breakdown_sums_to_lifetime(self, results):
        agg = results["bg2"].stage_agg
        rec = agg.records[0]
        assert sum(rec.breakdown().values()) == pytest.approx(rec.lifetime, rel=1e-6)

    def test_bg2_cuts_wait_time(self, results):
        """Hardware routing removes firmware queueing from the wait."""
        dgsp = results["bg_dgsp"].command_breakdown()
        bg2 = results["bg2"].command_breakdown()
        wait_dgsp = dgsp["wait_before_flash"] + dgsp["wait_after_flash"]
        wait_bg2 = bg2["wait_before_flash"] + bg2["wait_after_flash"]
        assert wait_bg2 < wait_dgsp

    def test_page_platforms_wait_dominates_flash(self, results):
        """Figure 17: the command's own flash time is a small fraction."""
        b = results["bg1"].command_breakdown()
        waits = b["wait_before_flash"] + b["wait_after_flash"] + b["transfer"]
        assert waits > b["flash"]


class TestFirmwareInvolvement:
    def test_bg2_firmware_nearly_idle(self, results):
        """BG-2 removes firmware from the sampling path."""
        per_cmd_bg2 = results["bg2"].firmware_busy_seconds / max(
            1, results["bg2"].meters.get("flash_reads")
        )
        per_cmd_dgsp = results["bg_dgsp"].firmware_busy_seconds / max(
            1, results["bg_dgsp"].meters.get("flash_reads")
        )
        assert per_cmd_bg2 < per_cmd_dgsp / 3

    def test_router_counters_only_on_bg2(self, results):
        assert results["bg2"].meters.get("router_parses") > 0
        for name in ("cc", "bg1", "bg_dgsp"):
            assert results[name].meters.get("router_parses") == 0, name


class TestEnergyShape:
    def test_cc_external_transfer_dominant_category(self, results):
        eb = results["cc"].energy_breakdown
        assert eb["external_transfer"] > eb["dram"]
        assert eb["external_transfer"] > eb["flash"]

    def test_bg1_dram_heavy(self, results):
        """BG-1 moves whole pages into SSD DRAM (75% of energy in paper)."""
        eb = results["bg1"].energy_breakdown
        assert eb["external_transfer"] < results["cc"].energy_breakdown["external_transfer"]
        assert eb["dram"] > results["bg2"].energy_breakdown["dram"]

    def test_efficiency_ordering(self, results):
        eff = {
            name: results[name].meters.get("targets_per_joule")
            for name in ("cc", "bg1", "bg2")
        }
        assert eff["bg2"] > eff["bg1"] > eff["cc"]


class TestTraditionalSsd:
    """Section VII-E: with 20 us reads, routing stops mattering."""

    def test_bg2_close_to_dgsp_on_slow_flash(self, prepared):
        cfg = traditional_ssd()
        dgsp = run_platform(
            "bg_dgsp", prepared, ssd_config=cfg, batch_size=BATCH, num_batches=NBATCH
        )
        bg2 = run_platform(
            "bg2", prepared, ssd_config=cfg, batch_size=BATCH, num_batches=NBATCH
        )
        ratio = bg2.throughput_targets_per_sec / dgsp.throughput_targets_per_sec
        assert ratio < 1.25  # "negligible difference"

    def test_ull_gap_is_larger_than_traditional_gap(self, prepared, results):
        cfg = traditional_ssd()
        dgsp = run_platform(
            "bg_dgsp", prepared, ssd_config=cfg, batch_size=BATCH, num_batches=NBATCH
        )
        bg2 = run_platform(
            "bg2", prepared, ssd_config=cfg, batch_size=BATCH, num_batches=NBATCH
        )
        trad_ratio = bg2.throughput_targets_per_sec / dgsp.throughput_targets_per_sec
        ull_ratio = (
            results["bg2"].throughput_targets_per_sec
            / results["bg_dgsp"].throughput_targets_per_sec
        )
        assert ull_ratio > trad_ratio
