"""Paper-shape regressions: the qualitative claims locked in as tests.

EXPERIMENTS.md records the paper's evaluation claims that this
reproduction recovers — platform throughput *orderings*, the sampling
latency win, and the Table IV inflation outlier. These tests pin those
shapes on tiny scaled workloads so any change that silently breaks a
qualitative result fails in tier-1 instead of at figure-generation time.

Scale note: 1024-node workloads, batch 16, 2 batches — large enough that
every geomean ordering from Figure 14 holds with margin, small enough to
run in tier-1. Assertions follow EXPERIMENTS.md:

* Fig 14: CC < GLIST/SmartSage < BG-1 < BG-DG/BG-SP < BG-DGSP < BG-2;
* Fig 15: BG-2 samples a mini-batch faster than BG-DGSP;
* Table IV: all workloads inflate by a few percent except OGBN (~1/3 of
  every page wasted by the 16-sections-per-page cap).
"""

from __future__ import annotations

import pytest

from repro.bench import geomean
from repro.directgraph import AddressCodec, FormatSpec, build_directgraph
from repro.orchestrate import GridCell, run_grid
from repro.workloads import WORKLOADS, workload_names

pytestmark = pytest.mark.slow

PLATFORM_ORDER = [
    "cc",
    "glist",
    "smartsage",
    "gids",
    "bg1",
    "bg_dg",
    "bg_sp",
    "bg_dgsp",
    "bg2",
]
NODES = 1024
BATCH = 16
NBATCH = 2


@pytest.fixture(scope="module")
def fig14_runs():
    """All platforms x all workloads at regression scale, one grid."""
    workloads = workload_names()
    cells = [
        GridCell(
            platform=p,
            workload=w,
            batch_size=BATCH,
            num_batches=NBATCH,
            scaled_nodes=NODES,
            seed=0,
        )
        for w in workloads
        for p in PLATFORM_ORDER
    ]
    results = iter(run_grid(cells, jobs=1).results)
    return {w: {p: next(results) for p in PLATFORM_ORDER} for w in workloads}


@pytest.fixture(scope="module")
def fig14_geomeans(fig14_runs):
    normalized = {}
    for workload, runs in fig14_runs.items():
        base = runs["cc"].throughput_targets_per_sec
        normalized[workload] = {
            p: runs[p].throughput_targets_per_sec / base for p in PLATFORM_ORDER
        }
    return {
        p: geomean([normalized[w][p] for w in normalized]) for p in PLATFORM_ORDER
    }


class TestFig14ThroughputOrdering:
    def test_baselines_beat_cc(self, fig14_geomeans):
        assert fig14_geomeans["glist"] > 1.0
        assert fig14_geomeans["smartsage"] > 1.0

    def test_bg1_beats_prior_work(self, fig14_geomeans):
        assert fig14_geomeans["bg1"] > fig14_geomeans["smartsage"]
        assert fig14_geomeans["bg1"] > fig14_geomeans["glist"]

    def test_directgraph_and_sampling_each_beat_bg1(self, fig14_geomeans):
        assert fig14_geomeans["bg_dg"] > fig14_geomeans["bg1"]
        assert fig14_geomeans["bg_sp"] > fig14_geomeans["bg1"]

    def test_combined_beats_either_alone(self, fig14_geomeans):
        assert fig14_geomeans["bg_dgsp"] > fig14_geomeans["bg_dg"]
        assert fig14_geomeans["bg_dgsp"] > fig14_geomeans["bg_sp"]

    def test_bg2_is_the_top_platform(self, fig14_geomeans):
        assert fig14_geomeans["bg2"] > fig14_geomeans["bg_dgsp"]
        assert fig14_geomeans["bg2"] == max(fig14_geomeans.values())

    def test_speedup_factors_in_paper_band(self, fig14_geomeans):
        # the paper reports ~21.7x at full scale; at 1024 nodes our BG-2
        # geomean sits near 9-10x — well clear of both 1x and absurdity
        assert 4.0 < fig14_geomeans["bg2"] < 40.0

    def test_gids_beats_cc_but_not_in_storage(self, fig14_geomeans):
        """GIDS drops the per-request host stack (beats CC) yet still
        hauls whole pages across PCIe, so even BG-1 stays ahead."""
        assert fig14_geomeans["gids"] > 1.0
        assert fig14_geomeans["bg1"] > fig14_geomeans["gids"]
        assert fig14_geomeans["bg2"] > 5 * fig14_geomeans["gids"]


class TestFig15SamplingLatency:
    def test_bg2_preps_faster_than_bg_dgsp(self, fig14_runs):
        """Figure 15: channel-level routing cuts sampling (prep) latency."""
        # amazon is the figure's workload; the geomean guards the rest
        amazon = fig14_runs["amazon"]
        assert (
            amazon["bg2"].mean_prep_seconds < amazon["bg_dgsp"].mean_prep_seconds
        )
        ratio = geomean(
            [
                runs["bg2"].mean_prep_seconds / runs["bg_dgsp"].mean_prep_seconds
                for runs in fig14_runs.values()
            ]
        )
        assert ratio < 1.0


class TestTableIVInflation:
    @pytest.fixture(scope="class")
    def inflation(self):
        out = {}
        for name, spec in WORKLOADS.items():
            graph = spec.scaled(2000).build_graph()
            fmt = FormatSpec(
                page_size=4096,
                feature_dim=spec.feature_dim,
                codec=AddressCodec.for_geometry(1 << 40, 4096),
            )
            image = build_directgraph(graph, None, fmt, serialize=False)
            raw = graph.num_nodes * spec.feature_bytes + graph.num_edges * 4
            out[name] = 100 * image.stats.inflation_vs_raw(raw)
        return out

    def test_ogbn_is_the_worst_by_far(self, inflation):
        others = {w: v for w, v in inflation.items() if w != "ogbn"}
        assert inflation["ogbn"] > max(others.values()) * 2

    def test_ogbn_wastes_about_a_third(self, inflation):
        assert 20.0 < inflation["ogbn"] < 45.0

    def test_everything_else_inflates_single_digits(self, inflation):
        for workload, value in inflation.items():
            if workload != "ogbn":
                assert value < 10.0, f"{workload} inflated {value:.1f}%"
