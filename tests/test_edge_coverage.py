"""Edge-case coverage across modules: the paths integration runs skip."""

import numpy as np
import pytest

from repro.directgraph import (
    DirectGraphFormatError,
    DirectGraphReader,
    FormatSpec,
    SectionAddress,
    build_directgraph,
)
from repro.gnn import (
    DenseFeatureTable,
    Graph,
    power_law_graph,
)
from repro.gnn.sampling import (
    child_position,
    depth_offsets,
    parent_position,
    position_depth,
    tree_capacity,
)


class TestHeapPositionInverses:
    def test_parent_of_root(self):
        assert parent_position((3, 3), 0) == -1

    def test_parent_inverts_child(self):
        fanouts = (3, 2, 4)
        for depth in (1, 2, 3):
            offsets = depth_offsets(fanouts)
            parent_lo = offsets[depth - 1]
            parent_hi = offsets[depth] if depth < len(offsets) else parent_lo + 1
            for parent in range(parent_lo, parent_hi):
                for j in range(fanouts[depth - 1]):
                    child = child_position(fanouts, parent, depth, j)
                    assert parent_position(fanouts, child) == parent
                    assert position_depth(fanouts, child) == depth

    def test_position_depth_bounds(self):
        with pytest.raises(ValueError):
            position_depth((2, 2), tree_capacity((2, 2)))
        with pytest.raises(ValueError):
            position_depth((2, 2), -1)

    def test_depth_zero(self):
        assert position_depth((5,), 0) == 0


class TestReaderEdgeCases:
    def _image(self):
        g = power_law_graph(40, 6.0, seed=1)
        feats = DenseFeatureTable.random(40, 4, seed=0)
        return g, build_directgraph(g, feats, FormatSpec(page_size=512, feature_dim=4))

    def test_reader_requires_serialized_image(self):
        g = power_law_graph(10, 3.0, seed=0)
        image = build_directgraph(
            g, None, FormatSpec(page_size=512, feature_dim=4), serialize=False
        )
        with pytest.raises(ValueError):
            DirectGraphReader(image)

    def test_primary_section_on_secondary_address_raises(self):
        lists = [[(j % 10) + 1 for j in range(300)]] + [[0]] * 10
        g = Graph.from_neighbor_lists(lists)
        feats = DenseFeatureTable.random(g.num_nodes, 4, seed=0)
        image = build_directgraph(g, feats, FormatSpec(page_size=512, feature_dim=4))
        reader = DirectGraphReader(image)
        sec_addr = image.node_plans[0].secondary_addrs[0]
        view = reader.section_at(sec_addr)
        assert view.type == 2
        # asking for a *primary* view at that address must fail cleanly
        image.node_plans[0].primary_addr = sec_addr
        with pytest.raises(DirectGraphFormatError):
            reader.primary_section(0)

    def test_section_at_invalid_index(self):
        _g, image = self._image()
        reader = DirectGraphReader(image)
        with pytest.raises(DirectGraphFormatError):
            reader.section_at(SectionAddress(0, 15))


class TestGraphEdgeCases:
    def test_single_node_self_loop(self):
        g = Graph.from_neighbor_lists([[0]])
        assert g.degree(0) == 1
        assert list(g.neighbors(0)) == [0]

    def test_empty_graph_from_lists(self):
        g = Graph.from_neighbor_lists([])
        assert g.num_nodes == 0
        assert g.average_degree == 0.0

    def test_from_edges_bounds_checked(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(5, 0)])


class TestBuilderEdgeCases:
    def test_single_tiny_node(self):
        g = Graph.from_neighbor_lists([[0]])
        feats = DenseFeatureTable.random(1, 4, seed=0)
        image = build_directgraph(g, feats, FormatSpec(page_size=512, feature_dim=4))
        assert image.num_pages == 1
        reader = DirectGraphReader(image)
        assert reader.neighbors(0) == [0]

    def test_feature_table_too_small_rejected(self):
        g = power_law_graph(10, 3.0, seed=0)
        feats = DenseFeatureTable.random(5, 4, seed=0)
        with pytest.raises(ValueError):
            build_directgraph(g, feats, FormatSpec(page_size=512, feature_dim=4))

    def test_zero_degree_node_serializes(self):
        g = Graph.from_neighbor_lists([[1], [], [0, 1]])
        feats = DenseFeatureTable.random(3, 4, seed=0)
        image = build_directgraph(g, feats, FormatSpec(page_size=512, feature_dim=4))
        reader = DirectGraphReader(image)
        assert reader.neighbors(1) == []
        assert np.array_equal(reader.feature(1), feats.vector(1))


class TestStatsEdges:
    def test_active_count_partial_bin_overlap(self):
        from repro.sim.stats import BusyTracker, active_count_series

        t = BusyTracker()
        t.add_interval(0.5, 1.5)  # spans two 1s bins
        _centers, counts = active_count_series([t], 0.0, 2.0, bins=2)
        assert counts[0] == pytest.approx(0.5)
        assert counts[1] == pytest.approx(0.5)

    def test_bins_validation(self):
        from repro.sim.stats import active_count_series

        with pytest.raises(ValueError):
            active_count_series([], 0.0, 1.0, bins=0)


class TestHostProtocolEdges:
    def test_double_deploy_reserves_fresh_blocks(self):
        from repro.directgraph import FormatSpec as FS
        from repro.gnn import DenseFeatureTable as DF
        from repro.host import BeaconHost, NvmeDriver
        from repro.ssd import FlashConfig
        from repro.ssd.firmware_runtime import FirmwareRuntime
        from repro.ssd.nvme import QueuePair

        queue = QueuePair(depth=16)
        firmware = FirmwareRuntime(
            queue,
            flash=FlashConfig(page_size=512, pages_per_block=8),
            total_blocks=512,
            format_spec=FS(page_size=512, feature_dim=4),
        )
        host = BeaconHost(NvmeDriver(queue, firmware))
        g = power_law_graph(30, 4.0, seed=2)
        feats = DF.random(30, 4, seed=0)
        first = host.deploy(g, feats)
        second = host.deploy(g, feats)
        assert set(first.blocks).isdisjoint(set(second.blocks))
