"""Tests for the spatial accelerator timing models."""

import pytest

from repro.accel import (
    AcceleratorSpec,
    SystolicArray,
    VectorArray,
    discrete_accelerator,
    map_minibatch,
    ssd_accelerator,
)
from repro.gnn import minibatch_compute_shapes


class TestSystolicArray:
    def test_single_tile_cycles(self):
        arr = SystolicArray(4, 4, 1e9)
        # one 4x4 output tile, K=8: K + R + C - 2 = 8 + 4 + 4 - 2
        assert arr.gemm_cycles(4, 8, 4) == 14

    def test_tiling_multiplies(self):
        arr = SystolicArray(4, 4, 1e9)
        one = arr.gemm_cycles(4, 8, 4)
        assert arr.gemm_cycles(8, 8, 8) == 4 * one
        assert arr.gemm_cycles(5, 8, 4) == 2 * one  # ragged M rounds up

    def test_zero_dims_cost_nothing(self):
        arr = SystolicArray(4, 4, 1e9)
        assert arr.gemm_cycles(0, 8, 4) == 0

    def test_seconds_scale_with_frequency(self):
        fast = SystolicArray(8, 8, 2e9).gemm(64, 64, 64)
        slow = SystolicArray(8, 8, 1e9).gemm(64, 64, 64)
        assert slow.seconds == pytest.approx(2 * fast.seconds)

    def test_macs_counted(self):
        cost = SystolicArray(8, 8, 1e9).gemm(16, 32, 8)
        assert cost.macs == 16 * 32 * 8

    def test_utilization_bounded(self):
        cost = SystolicArray(32, 32, 1e9).gemm(128, 128, 128)
        assert 0.0 < cost.utilization <= 1.0

    def test_bigger_array_fewer_cycles_large_gemm(self):
        small = SystolicArray(8, 8, 1e9).gemm_cycles(512, 512, 512)
        large = SystolicArray(64, 64, 1e9).gemm_cycles(512, 512, 512)
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4, 1e9)
        with pytest.raises(ValueError):
            SystolicArray(4, 4, 0)
        with pytest.raises(ValueError):
            SystolicArray(4, 4, 1e9).gemm_cycles(-1, 2, 2)


class TestVectorArray:
    def test_cycles_rounding(self):
        v = VectorArray(64, 1e9)
        assert v.aggregate_cycles(1, 64) == 1
        assert v.aggregate_cycles(1, 65) == 2
        assert v.aggregate_cycles(0, 128) == 0

    def test_adds_counted(self):
        cost = VectorArray(64, 1e9).aggregate(10, 128)
        assert cost.adds == 1280

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorArray(0, 1e9)
        with pytest.raises(ValueError):
            VectorArray(4, 1e9).aggregate_cycles(-1, 4)


class TestMapper:
    def shapes(self, batch=64):
        return minibatch_compute_shapes(
            batch_size=batch, fanouts=(3, 3, 3), feature_dim=200,
            hidden_dim=128, num_layers=3,
        )

    def test_plan_covers_all_layers(self):
        plan = map_minibatch(ssd_accelerator(), self.shapes())
        assert len(plan.layers) == 3
        assert plan.seconds > 0

    def test_discrete_faster_than_ssd_accel(self):
        """The TPU-like device has ~16x the MACs of the SSD accelerator."""
        shapes = self.shapes(batch=256)
        ssd = map_minibatch(ssd_accelerator(), shapes)
        tpu = map_minibatch(discrete_accelerator(), shapes)
        assert tpu.seconds < ssd.seconds

    def test_compute_scales_with_batch(self):
        small = map_minibatch(ssd_accelerator(), self.shapes(batch=32))
        big = map_minibatch(ssd_accelerator(), self.shapes(batch=256))
        assert big.seconds > small.seconds
        assert big.macs == 8 * small.macs

    def test_energy_positive_and_scales(self):
        spec = ssd_accelerator()
        small = map_minibatch(spec, self.shapes(batch=32)).energy_joules(spec)
        big = map_minibatch(spec, self.shapes(batch=64)).energy_joules(spec)
        assert 0 < small < big

    def test_dram_traffic_accounts_inputs_outputs(self):
        plan = map_minibatch(ssd_accelerator(), self.shapes(batch=1))
        # layer 1: 13 rows in (dim 200) + 13 rows out (dim 128), fp16
        expected_l1 = 13 * 200 * 2 + 13 * 128 * 2
        got_l1 = plan.layers[0].input_bytes + plan.layers[0].output_bytes
        assert got_l1 == expected_l1

    def test_minibatch_compute_time_is_sub_millisecond(self):
        """The paper's model is tiny; compute must not dominate data prep."""
        plan = map_minibatch(ssd_accelerator(), self.shapes(batch=64))
        assert plan.seconds < 1e-3
