"""Tests for the assembled SSD device runtime and its config presets."""

import pytest

from repro.sim import Simulator
from repro.ssd import (
    DieExecution,
    FirmwareConfig,
    FlashConfig,
    SSDConfig,
    SsdDevice,
    traditional_ssd,
    ull_ssd,
)


def make_device(sim, config=None):
    config = config or ull_ssd()
    return SsdDevice(sim, config, lambda job: DieExecution(0.0, 4096))


class TestConfigPresets:
    def test_ull_vs_traditional_read_latency(self):
        assert ull_ssd().flash.read_latency_s == pytest.approx(3e-6)
        assert traditional_ssd().flash.read_latency_s == pytest.approx(20e-6)

    def test_with_flash_returns_new_config(self):
        base = ull_ssd()
        wide = base.with_flash(num_channels=32)
        assert wide.flash.num_channels == 32
        assert base.flash.num_channels == 16  # original untouched

    def test_with_firmware(self):
        cfg = ull_ssd().with_firmware(num_cores=1)
        assert cfg.firmware.num_cores == 1

    def test_command_issue_cost_translation(self):
        fw = FirmwareConfig()
        assert fw.command_issue_cost(translate=True) > fw.command_issue_cost(
            translate=False
        )

    def test_page_transfer_time(self):
        flash = FlashConfig(channel_bandwidth_bps=800e6, channel_overhead_s=0.2e-6)
        expected = 0.2e-6 + 4096 / 800e6
        assert flash.page_transfer_s == pytest.approx(expected)

    def test_flash_validation(self):
        with pytest.raises(ValueError):
            FlashConfig(num_channels=0)
        with pytest.raises(ValueError):
            FlashConfig(page_size=128)
        with pytest.raises(ValueError):
            FlashConfig(read_latency_s=0)
        with pytest.raises(ValueError):
            FirmwareConfig(num_cores=0)


class TestSsdDevice:
    def test_firmware_work_occupies_one_core(self):
        sim = Simulator()
        device = make_device(sim, ull_ssd().with_firmware(num_cores=2))
        done = []

        def proc(sim, tag):
            yield from device.firmware_work(1e-6)
            done.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.process(proc(sim, tag))
        sim.run()
        # two cores: a and b in parallel, c queues
        assert done[0][1] == pytest.approx(1e-6)
        assert done[1][1] == pytest.approx(1e-6)
        assert done[2][1] == pytest.approx(2e-6)

    def test_firmware_busy_seconds(self):
        sim = Simulator()
        device = make_device(sim)

        def proc(sim):
            yield from device.firmware_work(3e-6)

        sim.process(proc(sim))
        sim.run()
        device.close_trackers()
        assert device.firmware_busy_seconds() == pytest.approx(3e-6)

    def test_host_work_uses_host_threads(self):
        sim = Simulator()
        config = ull_ssd()
        device = make_device(sim, config)
        n = config.host.num_threads + 1
        done = []

        def proc(sim):
            yield from device.host_work(1e-6)
            done.append(sim.now)

        for _ in range(n):
            sim.process(proc(sim))
        sim.run()
        assert done[-1] == pytest.approx(2e-6)  # one request had to wait

    def test_flash_submit_path(self):
        from repro.sim.stats import StageRecord
        from repro.ssd import FlashJob

        sim = Simulator()
        device = make_device(sim)
        job = FlashJob(page_index=0, record=StageRecord(command_id=0, hop=0))
        device.flash.submit(job)
        sim.run()
        assert job.record.transfer_end > 0
        assert device.flash.total_reads == 1

    def test_core_released_on_failure(self):
        """A crashing firmware task must not leak its core."""
        sim = Simulator()
        device = make_device(sim, ull_ssd().with_firmware(num_cores=1))

        def crasher(sim):
            try:
                yield from device.firmware_work(1e-6)
            finally:
                pass

        def wrapper(sim):
            try:
                yield sim.process(crasher(sim))
            except RuntimeError:
                pass

        sim.process(wrapper(sim))
        sim.run()
        assert device.cores.in_use == 0
