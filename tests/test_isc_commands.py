"""Tests for ONFI-style command encodings (Figure 13)."""

import pytest

from repro.directgraph import FormatSpec, SectionAddress
from repro.isc import (
    COMMAND_BASE_BYTES,
    CommandKind,
    DRAW_ENTRY_BYTES,
    GnnTaskConfig,
    SamplingCommand,
    UNKNOWN_NODE,
)


class TestGnnTaskConfig:
    def test_encode_decode_roundtrip(self):
        cfg = GnnTaskConfig(num_hops=3, fanout=3, feature_dim=128, seed=99)
        assert GnnTaskConfig.decode(cfg.encode()) == cfg

    def test_encoded_size(self):
        assert len(GnnTaskConfig(3, 3, 128).encode()) == 8

    def test_fanouts_tuple(self):
        assert GnnTaskConfig(3, 5, 16).fanouts == (5, 5, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            GnnTaskConfig(0, 3, 128)
        with pytest.raises(ValueError):
            GnnTaskConfig(3, 0, 128)
        with pytest.raises(ValueError):
            GnnTaskConfig(3, 3, 0)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            GnnTaskConfig.decode(b"\x01" * 8)


class TestSamplingCommand:
    def spec(self):
        return FormatSpec(page_size=4096, feature_dim=16)

    def test_roundtrip_primary(self):
        spec = self.spec()
        cmd = SamplingCommand(
            kind=CommandKind.SAMPLE_PRIMARY,
            address=SectionAddress(1234, 5),
            target=42,
            hop=2,
            position=7,
            node_id=UNKNOWN_NODE,
        )
        assert SamplingCommand.decode(spec, cmd.encode(spec)) == cmd

    def test_roundtrip_secondary_with_draws(self):
        spec = self.spec()
        cmd = SamplingCommand(
            kind=CommandKind.SAMPLE_SECONDARY,
            address=SectionAddress(9, 1),
            target=3,
            hop=1,
            position=2,
            node_id=77,
            draws=((0, 5), (2, -1)),
        )
        decoded = SamplingCommand.decode(spec, cmd.encode(spec))
        assert decoded == cmd

    def test_encoded_size_matches(self):
        spec = self.spec()
        cmd = SamplingCommand(
            kind=CommandKind.SAMPLE_SECONDARY,
            address=SectionAddress(9, 1),
            target=3,
            hop=1,
            position=2,
            node_id=77,
            draws=((0, 5), (1, 6), (2, 7)),
        )
        raw = cmd.encode(spec)
        assert len(raw) == cmd.encoded_bytes
        assert len(raw) == COMMAND_BASE_BYTES + 3 * DRAW_ENTRY_BYTES

    def test_draws_rejected_on_primary(self):
        with pytest.raises(ValueError):
            SamplingCommand(
                kind=CommandKind.SAMPLE_PRIMARY,
                address=SectionAddress(0, 0),
                target=0,
                hop=0,
                position=0,
                draws=((0, 1),),
            )

    def test_decode_length_check(self):
        spec = self.spec()
        with pytest.raises(ValueError):
            SamplingCommand.decode(spec, b"\x01" * 10)

    def test_configure_kind_rejected(self):
        with pytest.raises(ValueError):
            SamplingCommand(
                kind=CommandKind.CONFIGURE,
                address=SectionAddress(0, 0),
                target=0,
                hop=0,
                position=0,
            )
