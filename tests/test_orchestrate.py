"""Tests for the parallel orchestration layer and its result cache."""

from __future__ import annotations

import json

import pytest

from repro.bench import read_results, result_to_dict, write_results
from repro.orchestrate import (
    GridCell,
    ResultCache,
    cell_cache_key,
    derive_cell_seed,
    load_cached,
    outcome_from_cache,
    result_from_payload,
    result_to_payload,
    run_grid,
    stable_hash,
)
from repro.platforms import platform_by_name, run_platform
from repro.ssd import ull_ssd
from repro.workloads import workload_by_name

TINY = dict(batch_size=8, num_batches=1, scaled_nodes=256)


def tiny_cells(platforms=("bg2", "cc"), workloads=("ogbn",), **overrides):
    params = dict(TINY)
    params.update(overrides)
    return [
        GridCell(platform=p, workload=w, **params)
        for w in workloads
        for p in platforms
    ]


@pytest.fixture(scope="module")
def tiny_result():
    spec = workload_by_name("ogbn").scaled(256)
    return run_platform("bg2", spec, batch_size=8, num_batches=1)


class TestStableHash:
    def test_dict_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_dataclasses_hash_by_value(self):
        assert stable_hash(ull_ssd()) == stable_hash(ull_ssd())
        assert stable_hash(ull_ssd()) != stable_hash(
            ull_ssd().with_flash(num_channels=8)
        )

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(object())


class TestCacheKeys:
    def test_name_and_object_forms_agree(self):
        by_name = GridCell(platform="bg2", workload="ogbn", **TINY)
        by_object = GridCell(
            platform=platform_by_name("bg2"),
            workload=workload_by_name("ogbn"),
            **TINY,
        )
        assert cell_cache_key(by_name, 0) == cell_cache_key(by_object, 0)

    def test_seed_and_config_distinguish(self):
        cell = GridCell(platform="bg2", workload="ogbn", **TINY)
        assert cell_cache_key(cell, 0) != cell_cache_key(cell, 1)
        other = GridCell(
            platform="bg2",
            workload="ogbn",
            ssd_config=ull_ssd().with_firmware(num_cores=2),
            **TINY,
        )
        assert cell_cache_key(cell, 0) != cell_cache_key(other, 0)

    def test_derived_seeds_stable_and_distinct(self):
        a, b = tiny_cells(platforms=("bg2", "cc"))
        assert derive_cell_seed(0, a) == derive_cell_seed(0, a)
        assert derive_cell_seed(0, a) != derive_cell_seed(0, b)
        assert derive_cell_seed(0, a) != derive_cell_seed(1, a)


class TestResultSerialization:
    def test_payload_roundtrip_is_lossless(self, tiny_result):
        payload = result_to_payload(tiny_result)
        restored = result_from_payload(payload)
        assert result_to_payload(restored) == payload
        # restored results answer every derived query identically
        assert restored.summary() == tiny_result.summary()
        assert result_to_dict(restored) == result_to_dict(tiny_result)
        assert restored.latency_breakdown() == tiny_result.latency_breakdown()
        assert restored.command_breakdown() == tiny_result.command_breakdown()

    def test_payload_is_plain_json(self, tiny_result):
        payload = result_to_payload(tiny_result)
        assert json.loads(json.dumps(payload)) == payload

    def test_schema_mismatch_rejected(self, tiny_result):
        payload = result_to_payload(tiny_result)
        payload["schema"] = 999
        with pytest.raises(ValueError):
            result_from_payload(payload)

    def test_write_read_results_roundtrip(self, tiny_result, tmp_path):
        path = write_results([tiny_result], tmp_path / "results.json")
        (restored,) = read_results(path)
        assert restored.to_dict() == tiny_result.to_dict()


class TestResultCache:
    def test_put_get_contains_stats_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("abc") is None
        cache.put("abc", {"payload": {"x": 1}})
        assert "abc" in cache
        assert cache.get("abc") == {"payload": {"x": 1}}
        stats = cache.stats()
        assert stats.entries == 1 and stats.total_bytes > 0
        assert cache.clear() == 1
        assert cache.get("abc") is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc", {"payload": {}})
        cache.path_for("abc").write_text("{truncated")
        assert cache.get("abc") is None

    def test_prune_by_age(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.put("old", {"payload": {}})
        cache.put("new", {"payload": {}})
        now = 1_000_000.0
        os.utime(cache.path_for("old"), times=(now - 10 * 86400, now - 10 * 86400))
        os.utime(cache.path_for("new"), times=(now - 86400, now - 86400))
        assert cache.prune(keep_days=7, _now=now) == 1
        assert "old" not in cache and "new" in cache

    def test_prune_by_size_evicts_oldest_first(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        blob = {"payload": {"pad": "x" * 4000}}  # ~4 KB per entry
        for i in range(5):
            cache.put(f"k{i}", blob)
            path = cache.path_for(f"k{i}")
            os.utime(path, times=(1000.0 + i, 1000.0 + i))
        removed = cache.prune(max_mb=0.01, _now=2000.0)  # 10 KB budget
        assert removed == 3
        assert "k0" not in cache and "k1" not in cache and "k2" not in cache
        assert "k3" in cache and "k4" in cache

    def test_prune_size_zero_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {"payload": {}})
        cache.put("b", {"payload": {}})
        assert cache.prune(max_mb=0) == 2
        assert cache.stats().entries == 0

    def test_prune_requires_a_policy(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune()
        with pytest.raises(ValueError):
            cache.prune(keep_days=-1)
        with pytest.raises(ValueError):
            cache.prune(max_mb=-1)

    def test_prune_noop_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {"payload": {}})
        assert cache.prune(keep_days=365, max_mb=100) == 0
        assert "a" in cache


class TestRunGrid:
    def test_serial_and_parallel_bit_identical(self):
        """The determinism contract: --jobs N never changes any result."""
        cells = tiny_cells(platforms=("bg2", "cc"), workloads=("ogbn", "ppi"))
        serial = run_grid(cells, jobs=1)
        parallel = run_grid(cells, jobs=4)
        assert [r.to_dict() for r in serial.results] == [
            r.to_dict() for r in parallel.results
        ]

    def test_warm_cache_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = tiny_cells()
        cold = run_grid(cells, jobs=2, cache=cache)
        assert cold.executed == len(cells) and cold.cache_hits == 0
        warm = run_grid(cells, jobs=2, cache=cache)
        assert warm.executed == 0 and warm.cache_hits == len(cells)
        assert [r.to_dict() for r in warm.results] == [
            r.to_dict() for r in cold.results
        ]

    def test_derived_seeds_independent_of_grid_order(self):
        cells = tiny_cells(platforms=("bg2", "cc"))
        forward = run_grid(cells, jobs=1)
        backward = run_grid(list(reversed(cells)), jobs=1)
        by_key_fwd = dict(zip(forward.keys, (r.to_dict() for r in forward.results)))
        by_key_bwd = dict(zip(backward.keys, (r.to_dict() for r in backward.results)))
        assert by_key_fwd == by_key_bwd

    def test_explicit_seed_changes_the_result(self):
        (with_a,) = run_grid(tiny_cells(platforms=("bg2",), seed=1), jobs=1).results
        (with_b,) = run_grid(tiny_cells(platforms=("bg2",), seed=2), jobs=1).results
        assert with_a.to_dict() != with_b.to_dict()

    def test_load_cached_returns_none_for_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, miss = tiny_cells(platforms=("bg2", "cc"))
        run_grid([hit], jobs=1, cache=cache)
        loaded = load_cached([hit, miss], cache)
        assert loaded[0] is not None and loaded[1] is None
        assert loaded[0].platform == "bg2"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_grid([], jobs=-1)
        with pytest.raises(ValueError):
            run_grid([], chunk=0)

    def test_jobs_auto_detect(self):
        # 0 and None both mean "detect from CPU affinity"
        assert run_grid([], jobs=0).results == []
        assert run_grid([], jobs=None).results == []

    def test_platforms_run_grid_entry_point(self):
        from repro.platforms import run_grid as platform_run_grid

        outcome = platform_run_grid(tiny_cells(platforms=("bg2",)), jobs=1)
        assert outcome.results[0].platform == "bg2"


class TestImageSharing:
    def test_repeated_grids_build_zero_images(self, tmp_path):
        """Across grid runs, each distinct workload image is built once."""
        from repro.directgraph import BUILD_COUNTER
        from repro.orchestrate.grid import _PREPARED_MEMO

        cache = ResultCache(tmp_path)
        _PREPARED_MEMO.clear()
        cold = run_grid(tiny_cells(platforms=("bg2", "cc")), jobs=1, cache=cache)
        # 2 cells, 1 distinct (workload, page_size) -> exactly one build
        assert cold.images_built == 1
        # evict the in-memory memo so only the disk image cache can serve
        _PREPARED_MEMO.clear()
        BUILD_COUNTER.reset()
        resimulated = run_grid(
            tiny_cells(platforms=("bg2", "cc"), seed=123), jobs=1, cache=cache
        )
        assert resimulated.executed == 2  # new seed -> result-cache misses
        assert BUILD_COUNTER.count == 0  # ...but zero DirectGraph builds
        assert resimulated.images_built == 0
        assert resimulated.image_hits >= 1

    def test_warm_result_cache_touches_no_images(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = tiny_cells()
        run_grid(cells, jobs=1, cache=cache)
        warm = run_grid(cells, jobs=1, cache=cache)
        assert warm.executed == 0
        assert warm.images_built == 0 and warm.image_hits == 0

    def test_image_cache_derives_from_result_cache(self, tmp_path):
        from repro.orchestrate.grid import _PREPARED_MEMO

        cache = ResultCache(tmp_path)
        _PREPARED_MEMO.clear()  # a memo hit would skip the disk store
        run_grid(tiny_cells(platforms=("bg2",)), jobs=1, cache=cache)
        assert list((tmp_path / "images").glob("*.npz"))

    def test_image_cache_opt_out(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(
            tiny_cells(platforms=("bg2",)), jobs=1, cache=cache, image_cache=False
        )
        assert not (tmp_path / "images").exists()

    def test_prepared_memo_is_bounded(self):
        from repro.orchestrate.grid import (
            _PREPARED_MEMO,
            _PREPARED_MEMO_MAX,
            _prepared_for,
        )

        _PREPARED_MEMO.clear()
        base = workload_by_name("ogbn")
        for nodes in range(64, 64 + _PREPARED_MEMO_MAX + 4):
            _prepared_for(base.scaled(nodes), 4096)
        assert len(_PREPARED_MEMO) == _PREPARED_MEMO_MAX


class TestOutcomeFromCache:
    def test_renders_a_finished_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = tiny_cells(platforms=("bg2", "cc"))
        cold = run_grid(cells, jobs=1, cache=cache)
        rendered = outcome_from_cache(cells, cache)
        assert rendered.executed == 0
        assert rendered.cache_hits == len(cells)
        assert rendered.images_built == 0 and rendered.image_hits == 0
        assert all(rendered.from_cache)
        assert [r.to_dict() for r in rendered.results] == [
            r.to_dict() for r in cold.results
        ]

    def test_miss_raises_naming_the_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(KeyError, match=r"bg2/ogbn"):
            outcome_from_cache(tiny_cells(platforms=("bg2",)), cache)

    def test_partial_miss_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, miss = tiny_cells(platforms=("bg2", "cc"))
        run_grid([hit], jobs=1, cache=cache)
        with pytest.raises(KeyError, match=r"1 of 2 cells"):
            outcome_from_cache([hit, miss], cache)


class TestScaleOutCache:
    """ScaleOutResult documents in the content-addressed result cache."""

    PARAMS = dict(batch_size=8, num_batches=1)

    def outcome(self, cache, **overrides):
        from repro.platforms import scaleout_outcome

        spec = workload_by_name("ogbn").scaled(256)
        params = {**self.PARAMS, **overrides}
        return scaleout_outcome(2, "bg2", spec, cache=cache, **params)

    def test_store_load_lossless_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = self.outcome(cache)
        warm = self.outcome(cache)
        assert not cold.from_cache and warm.from_cache
        assert warm.result.to_dict() == cold.result.to_dict()
        # per-shard instruments survive, traces included
        assert all(
            w.to_dict() == c.to_dict()
            for w, c in zip(warm.result.per_device, cold.result.per_device)
        )

    def test_cache_hit_skips_simulation_and_builds(self, tmp_path):
        from repro.directgraph import BUILD_COUNTER
        from repro.orchestrate.grid import _PREPARED_MEMO

        cache = ResultCache(tmp_path)
        cold = self.outcome(cache)
        assert cold.shards_executed == 2
        _PREPARED_MEMO.clear()
        BUILD_COUNTER.reset()
        warm = self.outcome(cache)
        assert warm.shards_executed == 0 and warm.shard_cache_hits == 0
        assert BUILD_COUNTER.count == 0  # hit loads the document, not images

    def test_stats_count_array_and_shard_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats().entries == 0
        self.outcome(cache)
        # one document per shard cell plus the array document itself
        assert cache.stats().entries == 3

    def test_shard_cache_serves_when_array_document_lost(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = self.outcome(cache)
        # evict only the array-level document; the per-shard cells remain
        cache.path_for(cold.key).unlink()
        rebuilt = self.outcome(cache)
        assert not rebuilt.from_cache
        assert rebuilt.shards_executed == 0
        assert rebuilt.shard_cache_hits == 2
        assert rebuilt.result.to_dict() == cold.result.to_dict()

    def test_require_cached_raises_on_miss(self, tmp_path):
        from repro.platforms import scaleout_outcome

        cache = ResultCache(tmp_path)
        spec = workload_by_name("ogbn").scaled(256)
        with pytest.raises(KeyError, match="not in result cache"):
            scaleout_outcome(
                2, "bg2", spec, cache=cache, require_cached=True, **self.PARAMS
            )

    def test_scaleout_schema_mismatch_rejected(self, tmp_path):
        from repro.orchestrate import scaleout_from_payload, scaleout_to_payload

        cache = ResultCache(tmp_path)
        payload = scaleout_to_payload(self.outcome(cache).result)
        assert json.loads(json.dumps(payload)) == payload  # plain JSON
        payload["schema"] = 999
        with pytest.raises(ValueError):
            scaleout_from_payload(payload)
