"""Tests for Algorithm 1: planning, packing, and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.directgraph import (
    FormatSpec,
    PAGE_TYPE_PRIMARY,
    PAGE_TYPE_SECONDARY,
    DirectGraphReader,
    build_directgraph,
    decode_page,
)
from repro.gnn import (
    DenseFeatureTable,
    Graph,
    power_law_graph,
    ring_of_cliques,
    uniform_random_graph,
)


def small_spec(dim=4, page_size=512):
    from repro.directgraph import AddressCodec

    return FormatSpec(page_size=page_size, feature_dim=dim, codec=AddressCodec())


def build_small(graph, dim=4, page_size=512, **kwargs):
    features = DenseFeatureTable.random(graph.num_nodes, dim, seed=0)
    spec = small_spec(dim, page_size)
    return build_directgraph(graph, features, spec, **kwargs), features


class TestPlanning:
    def test_low_degree_node_has_no_secondaries(self):
        g = Graph.from_neighbor_lists([[1, 2], [0], [0]])
        image, _ = build_small(g)
        for plan in image.node_plans:
            assert plan.n_secondary == 0
            assert plan.n_inline == plan.degree

    def test_high_degree_node_spills_to_secondaries(self):
        # one node with 500 neighbors, page 512 B -> must overflow
        lists = [[j % 10 for j in range(500)]] + [[0]] * 9
        g = Graph.from_neighbor_lists(lists)
        image, _ = build_small(g)
        plan = image.node_plans[0]
        assert plan.n_secondary >= 1
        assert plan.n_inline + sum(plan.secondary_counts) == 500

    def test_all_neighbors_accounted(self):
        g = power_law_graph(200, 30.0, seed=3)
        image, _ = build_small(g, page_size=1024)
        for plan in image.node_plans:
            assert plan.n_inline + sum(plan.secondary_counts) == plan.degree

    def test_section_count_cap_respected(self):
        g = uniform_random_graph(500, 2.0, seed=1)
        image, _ = build_small(g)
        for page in image.page_plans:
            assert page.n_sections <= image.spec.max_sections_per_page

    def test_page_capacity_respected(self):
        g = power_law_graph(300, 25.0, seed=2)
        image, _ = build_small(g, page_size=1024)
        for page in image.page_plans:
            assert page.used_bytes <= image.spec.page_payload_bytes

    def test_page_types_partition_sections(self):
        g = power_law_graph(100, 40.0, seed=4)
        image, _ = build_small(g, page_size=512)
        kinds = {PAGE_TYPE_PRIMARY: 0, PAGE_TYPE_SECONDARY: 0}
        for page in image.page_plans:
            kinds[page.page_type] += 1
            for _node, kind, _ord in page.entries:
                assert kind == page.page_type  # section kind matches page kind
        assert kinds[PAGE_TYPE_PRIMARY] > 0

    def test_plan_only_skips_bytes(self):
        g = ring_of_cliques(3, 4)
        spec = small_spec()
        image = build_directgraph(g, None, spec, serialize=False)
        assert not image.serialized
        with pytest.raises(RuntimeError):
            image.page_bytes(0)

    def test_serialize_requires_features(self):
        g = ring_of_cliques(3, 4)
        with pytest.raises(ValueError):
            build_directgraph(g, None, small_spec(), serialize=True)

    def test_feature_dim_mismatch_rejected(self):
        g = ring_of_cliques(3, 4)
        feats = DenseFeatureTable.random(g.num_nodes, 8, seed=0)
        with pytest.raises(ValueError):
            build_directgraph(g, feats, small_spec(dim=4))


class TestStats:
    def test_stats_consistency(self):
        g = power_law_graph(150, 20.0, seed=5)
        image, _ = build_small(g, page_size=1024)
        stats = image.stats
        assert stats.total_pages == len(image.page_plans)
        assert stats.num_nodes == 150
        assert stats.total_bytes == stats.total_pages * 1024
        assert 0.0 <= stats.internal_waste_fraction < 1.0

    def test_inflation_low_for_dense_graph(self):
        """Paper Table IV: high-degree graphs inflate only a few percent."""
        g = power_law_graph(400, 200.0, max_degree=2000, seed=6)
        feats = DenseFeatureTable.random(400, 100, seed=0)
        spec = FormatSpec(page_size=4096, feature_dim=100)
        image = build_directgraph(g, feats, spec)
        raw = 400 * 100 * 2 + g.num_edges * 4
        assert image.stats.inflation_vs_raw(raw) < 0.15

    def test_inflation_high_for_short_sections(self):
        """Paper Table IV: OGBN-like graphs (tiny sections) inflate ~32%
        because at most 16 sections fit per page."""
        g = uniform_random_graph(2000, 28.0, seed=7)
        feats = DenseFeatureTable.random(2000, 16, seed=0)
        spec = FormatSpec(page_size=4096, feature_dim=16)
        image = build_directgraph(g, feats, spec)
        raw = 2000 * 16 * 2 + g.num_edges * 4
        assert image.stats.inflation_vs_raw(raw) > 0.20

    def test_inflation_requires_positive_raw(self):
        g = ring_of_cliques(2, 3)
        image, _ = build_small(g)
        with pytest.raises(ValueError):
            image.stats.inflation_vs_raw(0)


class TestSerialization:
    def test_pages_have_declared_size(self):
        g = power_law_graph(120, 15.0, seed=8)
        image, _ = build_small(g, page_size=1024)
        for page in image.page_plans:
            assert len(image.page_bytes(page.page_index)) == 1024

    def test_page_header_fields(self):
        g = ring_of_cliques(2, 4)
        image, _ = build_small(g)
        for page in image.page_plans:
            raw = image.page_bytes(page.page_index)
            assert raw[0] == page.page_type
            assert raw[1] == page.n_sections

    def test_decode_page_roundtrip(self):
        g = power_law_graph(100, 10.0, seed=9)
        image, _ = build_small(g, page_size=1024)
        for page in image.page_plans:
            decoded = decode_page(image.spec, image.page_bytes(page.page_index))
            assert decoded.page_type == page.page_type
            assert len(decoded.sections) == page.n_sections

    def test_reader_neighbors_match_graph(self):
        g = power_law_graph(150, 12.0, seed=10)
        image, _ = build_small(g, page_size=1024)
        reader = DirectGraphReader(image)
        for node in range(0, 150, 7):
            assert reader.neighbors(node) == [int(x) for x in g.neighbors(node)]

    def test_reader_neighbors_match_with_secondaries(self):
        lists = [[j % 20 for j in range(300)]] + [[0, 1]] * 19
        g = Graph.from_neighbor_lists(lists)
        image, _ = build_small(g, page_size=512)
        assert image.node_plans[0].n_secondary >= 1
        reader = DirectGraphReader(image)
        assert reader.neighbors(0) == [j % 20 for j in range(300)]

    def test_reader_features_match_table(self):
        g = ring_of_cliques(3, 5)
        image, features = build_small(g, dim=6)
        reader = DirectGraphReader(image)
        for node in range(g.num_nodes):
            assert np.array_equal(reader.feature(node), features.vector(node))

    def test_node_at_reverse_lookup(self):
        g = power_law_graph(80, 10.0, seed=11)
        image, _ = build_small(g, page_size=1024)
        for node in range(80):
            assert image.node_at(image.address_of(node)) == node

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_roundtrip_property(self, seed):
        g = power_law_graph(60, 8.0, seed=seed)
        image, _ = build_small(g, page_size=1024)
        reader = DirectGraphReader(image)
        for node in range(0, 60, 13):
            assert reader.neighbors(node) == [int(x) for x in g.neighbors(node)]
