"""Differential suite: batched/chunked dispatch is bit-identical.

The chunked grid path ships whole batches of cells to workers and runs
them through the cooperative in-process executor
(:func:`repro.orchestrate.execute_batch`). These tests pin the contract
the perf win rests on: every (jobs, chunk) combination produces sha256
payload digests equal to classic per-cell serial dispatch, and
``execute_batch`` itself reproduces the golden fixtures in
``tests/data/``.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.orchestrate import (
    GridCell,
    auto_chunk_size,
    available_cpus,
    execute_batch,
    run_grid,
)
from repro.orchestrate.cache import json_default
from repro.orchestrate.grid import _execute_cell
from repro.orchestrate.serialize import result_to_payload

GOLDEN = Path(__file__).parent / "data" / "golden_runresult_sha256.json"

TINY = dict(
    batch_size=8,
    num_batches=1,
    num_hops=2,
    fanout=2,
    hidden_dim=32,
    scaled_nodes=256,
)


def _digest(payload) -> str:
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=json_default
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def tiny_cells(n=6, seed0=0):
    platforms = ["bg1", "bg2", "cc", "glist", "smartsage", "bg_dg"]
    return [
        GridCell(
            platform=platforms[i % len(platforms)],
            workload="ogbn",
            seed=seed0 + i,
            **TINY,
        )
        for i in range(n)
    ]


class TestExecuteBatch:
    def test_payloads_match_per_cell_execution(self):
        cells = tiny_cells(4)
        jobs_args = [(cell, cell.seed, None) for cell in cells]
        per_cell = [_digest(_execute_cell(job)) for job in jobs_args]
        batched = [_digest(p) for p in execute_batch(jobs_args)]
        assert batched == per_cell

    @pytest.mark.parametrize("max_live", [1, 2, 8])
    def test_max_live_does_not_change_results(self, max_live):
        cells = tiny_cells(4)
        jobs_args = [(cell, cell.seed, None) for cell in cells]
        expected = [_digest(_execute_cell(job)) for job in jobs_args]
        got = [_digest(p) for p in execute_batch(jobs_args, max_live=max_live)]
        assert got == expected

    def test_small_slices_do_not_change_results(self):
        cells = tiny_cells(3)
        jobs_args = [(cell, cell.seed, None) for cell in cells]
        expected = [_digest(_execute_cell(job)) for job in jobs_args]
        got = [
            _digest(p)
            for p in execute_batch(jobs_args, max_live=2, slice_events=97)
        ]
        assert got == expected

    def test_reproduces_golden_fixture(self):
        """The cooperative executor hits the repo-wide golden digests."""
        golden = json.loads(GOLDEN.read_text())
        cells = [
            GridCell(
                platform=name,
                workload="ogbn",
                batch_size=8,
                num_batches=2,
                num_hops=2,
                fanout=2,
                seed=0,
                scaled_nodes=256,
            )
            for name in sorted(golden)
        ]
        jobs_args = [(cell, 0, None) for cell in cells]
        digests = [_digest(p) for p in execute_batch(jobs_args, max_live=3)]
        assert digests == [golden[name] for name in sorted(golden)]

    def test_heartbeat_reports_progress(self):
        cells = tiny_cells(3)
        jobs_args = [(cell, cell.seed, None) for cell in cells]
        beats = []
        execute_batch(jobs_args, max_live=2, heartbeat=beats.append)
        assert beats, "heartbeat never fired"
        assert beats[-1]["completed"] == 3
        assert beats[-1]["live"] == 0
        assert beats[-1]["total"] == 3
        assert beats[-1]["events"] > 0
        assert all(
            b["completed"] <= a["completed"]
            for b, a in zip(beats, beats[1:])
        )

    def test_rejects_bad_max_live(self):
        with pytest.raises(ValueError):
            execute_batch([], max_live=0)

    def test_empty_batch(self):
        assert execute_batch([]) == []


class TestChunkedRunGrid:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("chunk", [1, 4, None])
    def test_differential_vs_serial(self, jobs, chunk):
        cells = tiny_cells(6)
        baseline = run_grid(cells, jobs=1, chunk=1)
        expected = [_digest(result_to_payload(r)) for r in baseline.results]
        outcome = run_grid(cells, jobs=jobs, chunk=chunk)
        got = [_digest(result_to_payload(r)) for r in outcome.results]
        assert got == expected
        assert outcome.executed == len(cells)

    def test_chunk_all_single_task(self):
        cells = tiny_cells(5)
        baseline = run_grid(cells, jobs=1, chunk=1)
        outcome = run_grid(cells, jobs=2, chunk=len(cells))
        assert [
            _digest(result_to_payload(r)) for r in outcome.results
        ] == [_digest(result_to_payload(r)) for r in baseline.results]

    def test_chunked_results_flow_through_cache(self, tmp_path):
        from repro.orchestrate import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cells = tiny_cells(4)
        cold = run_grid(cells, jobs=2, chunk=2, cache=cache)
        assert cold.executed == 4
        warm = run_grid(cells, jobs=2, chunk=2, cache=cache)
        assert warm.executed == 0 and warm.cache_hits == 4
        assert [
            _digest(result_to_payload(r)) for r in warm.results
        ] == [_digest(result_to_payload(r)) for r in cold.results]


class TestSizingHelpers:
    def test_available_cpus_positive(self):
        assert available_cpus() >= 1

    def test_available_cpus_respects_affinity(self):
        import os

        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() == len(os.sched_getaffinity(0))

    def test_auto_chunk_single_job_is_one_chunk(self):
        assert auto_chunk_size(32, 1) == 32
        assert auto_chunk_size(1, 1) == 1

    def test_auto_chunk_targets_four_chunks_per_worker(self):
        assert auto_chunk_size(32, 4) == 2  # 16 chunks for 4 workers
        assert auto_chunk_size(100, 4) == 7
        assert auto_chunk_size(3, 8) == 1

    def test_auto_chunk_degenerate(self):
        assert auto_chunk_size(0, 4) == 1
