"""Shared invariants every registered platform must satisfy.

Parametrized over :func:`repro.platforms.platform_names` — never a
hard-coded list — so a platform added to the registry (``gids`` was the
first) inherits the whole contract for free:

* runs complete with positive time/throughput and timed batches;
* meters conserve: counters non-negative, busy times inside capacity
  bounds, energy categories summing to the recorded total;
* the serialized payload round-trips byte-identically;
* sample traces pack to canonical int32 arrays, idempotently;
* grid cache keys are stable under re-construction and sensitive to the
  seed;
* back-to-back runs are bit-identical;
* the page cache never changes *what* gets sampled (migrated here from
  the hard-coded two-platform loop in ``test_cache_datapath.py``).

The registry's lookup contract (error message, aliases, explicit
orderings) is pinned at the bottom.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.orchestrate import GridCell
from repro.orchestrate.cache import json_default
from repro.orchestrate.grid import cell_cache_key
from repro.orchestrate.serialize import result_from_payload, result_to_payload
from repro.platforms import (
    PLATFORMS,
    PreparedWorkload,
    ordered_platforms,
    platform_by_name,
    platform_names,
    run_platform,
)
from repro.platforms.result import pack_trace
from repro.workloads import workload_by_name

PARAMS = dict(batch_size=8, num_batches=2, num_hops=2, fanout=2, seed=0)
WORKLOAD = "ogbn"
NODES = 256


@pytest.fixture(scope="module")
def prepared():
    spec = workload_by_name(WORKLOAD).scaled(NODES)
    return PreparedWorkload.prepare(spec)


@pytest.fixture(scope="module")
def results(prepared):
    return {
        name: run_platform(name, prepared, **PARAMS, sample_trace=True)
        for name in platform_names()
    }


def payload_blob(result) -> bytes:
    return json.dumps(
        result_to_payload(result),
        sort_keys=True,
        separators=(",", ":"),
        default=json_default,
    ).encode()


class TestRunCompletes:
    @pytest.mark.parametrize("name", platform_names())
    def test_run_completes(self, results, name):
        result = results[name]
        assert result.total_seconds > 0
        assert result.throughput_targets_per_sec > 0
        assert len(result.batches) == PARAMS["num_batches"]

    @pytest.mark.parametrize("name", platform_names())
    def test_flash_reads_happen(self, results, name):
        assert results[name].meters.get("flash_reads") > PARAMS["batch_size"]

    @pytest.mark.parametrize("name", platform_names())
    def test_batches_are_timed(self, results, name):
        for batch in results[name].batches:
            assert batch.prep_end > batch.prep_start
            assert batch.compute_end >= batch.compute_start


class TestMeterConservation:
    @pytest.mark.parametrize("name", platform_names())
    def test_meters_non_negative(self, results, name):
        for key, value in results[name].meters.as_dict().items():
            assert value >= 0, (name, key)

    @pytest.mark.parametrize("name", platform_names())
    def test_busy_times_within_capacity(self, results, name):
        result = results[name]
        total = result.total_seconds
        meters = result.meters
        slack = 1e-12
        assert meters.get("pcie_busy_s") <= total + slack
        assert meters.get("dram_busy_s") <= total + slack
        assert (
            meters.get("host_busy_s")
            <= total * meters.get("host_threads") + slack
        )
        assert (
            result.firmware_busy_seconds
            <= total * meters.get("fw_cores") + slack
        )

    @pytest.mark.parametrize("name", platform_names())
    def test_energy_categories_sum_to_total(self, results, name):
        result = results[name]
        total = sum(result.energy_breakdown.values())
        assert total == pytest.approx(
            result.meters.get("energy_total_j"), rel=1e-9
        )
        for category, joules in result.energy_breakdown.items():
            assert joules >= 0, (name, category)

    @pytest.mark.parametrize("name", platform_names())
    def test_sampling_happens_exactly_one_place_per_site(self, results, name):
        """The per-site sampling meters agree with the declared site."""
        platform = PLATFORMS[name]
        meters = results[name].meters
        by_site = {
            "host": meters.get("host_sample_neighbors"),
            "firmware": meters.get("fw_sample_neighbors"),
            "die": meters.get("die_sample_neighbors"),
            "gpu": meters.get("gpu_sample_neighbors"),
        }
        assert by_site[platform.sampling_site] > 0
        for site, count in by_site.items():
            if site != platform.sampling_site:
                assert count == 0, (name, site)


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("name", platform_names())
    def test_payload_preserves_semantics(self, results, name):
        result = results[name]
        restored = result_from_payload(json.loads(payload_blob(result)))
        assert restored.platform == result.platform
        assert restored.workload == result.workload
        assert restored.total_seconds == result.total_seconds
        assert restored.meters.as_dict() == pytest.approx(
            result.meters.as_dict()
        )
        assert restored.energy_breakdown == result.energy_breakdown
        for mine, theirs in zip(restored.sample_trace, result.sample_trace):
            assert np.array_equal(mine, theirs)

    @pytest.mark.parametrize("name", platform_names())
    def test_payload_serialization_reaches_a_fixpoint(self, results, name):
        """Deserializing normalizes integer-typed meters to floats once;
        from then on serialize -> restore -> serialize is byte-stable
        (what the content-addressed result cache relies on)."""
        restored = result_from_payload(json.loads(payload_blob(results[name])))
        blob = payload_blob(restored)
        again = result_from_payload(json.loads(blob))
        assert payload_blob(again) == blob


class TestSampleTracePacking:
    @pytest.mark.parametrize("name", platform_names())
    def test_traces_are_canonical_int32_arrays(self, results, name):
        traces = results[name].sample_trace
        assert len(traces) == PARAMS["num_batches"]
        for trace in traces:
            assert trace.dtype == np.int32
            assert trace.ndim == 2 and trace.shape[1] == 4
            assert trace.shape[0] > 0

    @pytest.mark.parametrize("name", platform_names())
    def test_packing_is_idempotent(self, results, name):
        for trace in results[name].sample_trace:
            repacked = pack_trace([list(row) for row in trace])
            assert np.array_equal(repacked, trace)

    @pytest.mark.parametrize("name", platform_names())
    def test_every_platform_samples_identical_trees(self, results, name):
        """The functional DAG is platform-independent: all nine sample
        the exact same tree positions (the headline equivalence)."""
        reference = results["bg2"].sample_trace
        traces = results[name].sample_trace
        for mine, ref in zip(traces, reference):
            assert np.array_equal(mine, ref)


class TestCacheKeyStability:
    @pytest.mark.parametrize("name", platform_names())
    def test_equal_cells_equal_keys(self, name):
        make = lambda: GridCell(platform=name, workload=WORKLOAD, **PARAMS)
        assert cell_cache_key(make(), seed=0) == cell_cache_key(make(), seed=0)

    @pytest.mark.parametrize("name", platform_names())
    def test_seed_changes_key(self, name):
        cell = GridCell(platform=name, workload=WORKLOAD, **PARAMS)
        assert cell_cache_key(cell, seed=0) != cell_cache_key(cell, seed=1)

    def test_platforms_never_collide(self):
        keys = {
            cell_cache_key(
                GridCell(platform=name, workload=WORKLOAD, **PARAMS), seed=0
            )
            for name in platform_names()
        }
        assert len(keys) == len(platform_names())


class TestRepeatability:
    @pytest.mark.parametrize("name", platform_names())
    def test_back_to_back_runs_are_bit_identical(self, prepared, results, name):
        again = run_platform(name, prepared, **PARAMS, sample_trace=True)
        assert payload_blob(again) == payload_blob(results[name])


class TestCacheInvariance:
    @pytest.mark.parametrize("name", platform_names())
    def test_cache_never_changes_what_gets_sampled(
        self, prepared, results, name
    ):
        """The page cache is a timing optimization: the sampled subgraph
        (and the page contents behind every decision) is identical with
        or without it, on every platform."""
        cached = run_platform(
            name,
            prepared,
            **PARAMS,
            sample_trace=True,
            page_cache=CacheConfig(capacity_mb=0.5),
        )
        uncached = results[name]
        assert len(uncached.sample_trace) == len(cached.sample_trace)
        for a, b in zip(uncached.sample_trace, cached.sample_trace):
            assert np.array_equal(a, b)


class TestRegistryContract:
    def test_platform_names_matches_registry(self):
        assert platform_names() == list(PLATFORMS)

    def test_unknown_name_lists_available_platforms(self):
        with pytest.raises(KeyError) as excinfo:
            platform_by_name("nonexistent")
        message = str(excinfo.value)
        for name in platform_names():
            assert name in message
        assert "bam" in message  # aliases are part of the suggestion

    @pytest.mark.parametrize("name", platform_names())
    def test_every_name_resolves_to_itself(self, name):
        assert platform_by_name(name).name == name
        assert platform_by_name(name.upper()).name == name

    def test_gids_family_alias(self):
        assert platform_by_name("bam").name == "gids"
        assert platform_by_name("BaM").name == "gids"

    def test_ordered_platforms_validates_and_normalizes(self):
        assert ordered_platforms(["cc", "BG-2", "bam"]) == ["cc", "bg2", "gids"]
        with pytest.raises(KeyError):
            ordered_platforms(["cc", "definitely_not_a_platform"])
