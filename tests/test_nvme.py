"""Tests for the NVMe queue-pair transport."""

import pytest

from repro.ssd.nvme import (
    NvmeCommand,
    Opcode,
    QueueFullError,
    QueuePair,
    Status,
)


class TestQueuePair:
    def test_submit_fetch_complete_poll(self):
        qp = QueuePair(depth=4)
        cid = qp.submit(Opcode.READ, lba=7)
        command = qp.fetch()
        assert command.command_id == cid
        assert command.opcode == Opcode.READ
        assert command.lba == 7
        qp.complete(command, Status.SUCCESS, result=b"data")
        completion = qp.poll()
        assert completion.command_id == cid
        assert completion.status == Status.SUCCESS
        assert completion.result == b"data"

    def test_fifo_order(self):
        qp = QueuePair(depth=8)
        ids = [qp.submit(Opcode.READ, lba=i) for i in range(3)]
        fetched = [qp.fetch().command_id for _ in range(3)]
        assert fetched == ids

    def test_queue_full_raises(self):
        qp = QueuePair(depth=2)
        qp.submit(Opcode.READ)
        qp.submit(Opcode.READ)
        with pytest.raises(QueueFullError):
            qp.submit(Opcode.READ)

    def test_in_flight_bounds_depth(self):
        qp = QueuePair(depth=2)
        qp.submit(Opcode.READ)
        command = qp.fetch()
        qp.submit(Opcode.READ)  # SQ has room again
        with pytest.raises(QueueFullError):
            qp.submit(Opcode.READ)  # still 2 in flight
        qp.complete(command, Status.SUCCESS)
        qp.poll()
        qp.submit(Opcode.READ)  # slot freed

    def test_poll_empty_returns_none(self):
        assert QueuePair().poll() is None

    def test_fetch_empty_returns_none(self):
        assert QueuePair().fetch() is None

    def test_doorbells_track_counts(self):
        qp = QueuePair()
        qp.submit(Opcode.READ)
        assert qp.sq_doorbell == 1
        command = qp.fetch()
        qp.complete(command, Status.SUCCESS)
        qp.poll()
        assert qp.cq_doorbell == 1

    def test_wait_for_skips_other_completions(self):
        qp = QueuePair()
        first = qp.submit(Opcode.READ)
        second = qp.submit(Opcode.READ)
        a = qp.fetch()
        b = qp.fetch()
        qp.complete(a, Status.SUCCESS, result="a")
        qp.complete(b, Status.SUCCESS, result="b")
        completion = qp.wait_for(second)
        assert completion.result == "b"
        # the skipped completion is still retrievable
        assert qp.wait_for(first).result == "a"

    def test_wait_for_missing_raises(self):
        qp = QueuePair()
        with pytest.raises(LookupError):
            qp.wait_for(12345)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            QueuePair(depth=0)
