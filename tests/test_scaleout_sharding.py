"""Sharded scale-out arrays: differential and property tests.

The sharded array model promises a determinism contract — ``jobs=N`` is
bit-identical to ``jobs=1``, repeated runs are bit-identical to each
other, and both match the golden digests captured at introduction time
(``tests/data/golden_scaleout_sha256.json``, regenerated only via
``tests/tools/capture_scaleout_golden.py``). On top of the differential
layer, property tests pin the exchange's conservation laws: the hash
partition covers every node exactly once, per-link sends equal per-shard
remote samples, a single device never pays P2P time, the analytic path
is monotone in ``cross_partition_fraction``, and the measured and
analytic paths agree when the fraction is set to the measured ratio.
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from tools.capture_scaleout_golden import (  # noqa: E402
    FIXTURE,
    GOLDEN_DEVICES,
    GOLDEN_PARAMS,
    GOLDEN_PLATFORM,
    golden_prepared,
    scaleout_digest,
)

from repro.gnn.sampling import tree_capacity  # noqa: E402
from repro.orchestrate import (  # noqa: E402
    scaleout_from_payload,
    scaleout_to_payload,
)
from repro.platforms.scaleout import (  # noqa: E402
    partition_nodes,
    run_scaleout,
    shard_batch_sizes,
    shard_of,
)


@pytest.fixture(scope="module")
def prepared():
    return golden_prepared()


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def sharded(prepared):
    """One canonical 3-device measured-mode run shared across tests."""
    return run_scaleout(3, GOLDEN_PLATFORM, prepared, **GOLDEN_PARAMS)


# -- differential layer -------------------------------------------------------


def test_fixture_covers_golden_devices(golden):
    assert sorted(golden) == sorted(str(d) for d in GOLDEN_DEVICES)


@pytest.mark.parametrize("devices", GOLDEN_DEVICES)
def test_golden_digest(devices, prepared, golden):
    assert scaleout_digest(devices, prepared) == golden[str(devices)], (
        f"{devices}-device ScaleOutResult payload diverged from the golden "
        "fixture — the hash partition, shard seeds, traces, or exchange "
        "accounting changed"
    )


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_bit_identical_to_serial(jobs, prepared, golden):
    # devices=3 exercises the non-divisible remainder across workers
    assert scaleout_digest(3, prepared, jobs=jobs) == golden["3"], (
        f"jobs={jobs} produced a different ScaleOutResult than jobs=1"
    )


def test_repeated_runs_bit_identical(prepared):
    first = scaleout_digest(3, prepared)
    second = scaleout_digest(3, prepared)
    assert first == second


def test_payload_round_trip_lossless(sharded):
    payload = scaleout_to_payload(sharded)
    restored = scaleout_from_payload(payload)
    assert restored.to_dict() == sharded.to_dict()
    # the per-shard sampling traces (packed int32 arrays) survive the trip
    for r, s in zip(restored.per_device, sharded.per_device):
        assert len(r.sample_trace) == len(s.sample_trace)
        for rb, sb in zip(r.sample_trace, s.sample_trace):
            assert np.array_equal(rb, sb)


# -- hash partition -----------------------------------------------------------


@pytest.mark.parametrize("devices", [1, 2, 3, 8])
def test_partition_covers_every_node_exactly_once(devices):
    owner = partition_nodes(256, devices, seed=0)
    assert len(owner) == 256  # one owner per node, no gaps or repeats
    assert all(0 <= device < devices for device in owner)
    if devices > 1:
        assert len(set(owner)) == devices  # every device owns something
    # the map is the pure per-node hash, independent of enumeration
    assert owner[17] == shard_of(17, devices, seed=0)


def test_partition_depends_on_seed():
    assert not np.array_equal(
        partition_nodes(256, 4, seed=0), partition_nodes(256, 4, seed=1)
    )


def test_partition_is_packed_int32():
    owner = partition_nodes(256, 4, seed=0)
    assert isinstance(owner, np.ndarray)
    assert owner.dtype == np.int32


@pytest.mark.parametrize(
    "batch,devices,expected",
    [(64, 3, [22, 21, 21]), (64, 4, [16, 16, 16, 16]), (8, 3, [3, 3, 2]), (5, 5, [1] * 5)],
)
def test_shard_batch_sizes(batch, devices, expected):
    sizes = shard_batch_sizes(batch, devices)
    assert sizes == expected
    assert sum(sizes) == batch
    assert max(sizes) - min(sizes) <= 1


# -- target accounting (the old model overcounted) ----------------------------


def test_total_targets_exact_for_non_divisible_batch(sharded):
    # batch 8 on 3 devices: the old model served ceil(8/3)*3 = 9 targets
    # per batch; the sharded model serves exactly the array batch
    assert sharded.shard_batch_sizes == [3, 3, 2]
    assert sharded.total_targets == (
        GOLDEN_PARAMS["batch_size"] * GOLDEN_PARAMS["num_batches"]
    )
    assert sharded.throughput_targets_per_sec == pytest.approx(
        sharded.total_targets / sharded.total_seconds
    )


# -- exchange properties ------------------------------------------------------


def test_remote_vectors_conserved(sharded):
    # every vector sent over some link is a remote sample of exactly one shard
    assert sum(sum(row) for row in sharded.link_vectors) == sum(
        sharded.remote_samples
    )
    for device, remote in enumerate(sharded.remote_samples):
        inbound = sum(row[device] for row in sharded.link_vectors)
        assert inbound == remote
        assert sharded.link_vectors[device][device] == 0  # no self-links


def test_remote_accounting_matches_traces(sharded):
    """Differential re-derivation: traces + ownership => the link matrix."""
    owner = partition_nodes(256, sharded.num_devices, GOLDEN_PARAMS["seed"])
    remote = [0] * sharded.num_devices
    for device, result in enumerate(sharded.per_device):
        assert result.sample_trace is not None
        for batch in result.sample_trace:
            for _target, _position, node, depth in batch:
                if depth > 0 and owner[node] != device:
                    remote[device] += 1
    assert remote == sharded.remote_samples
    assert sharded.measured_remote_fraction > 0.0


def test_single_device_zero_p2p(prepared):
    one = run_scaleout(1, GOLDEN_PLATFORM, prepared, **GOLDEN_PARAMS)
    assert one.p2p_seconds_per_batch == 0.0
    assert one.total_remote_vectors == 0
    assert one.measured_remote_fraction == 0.0
    assert one.batch_seconds * one.num_devices > 0


def test_batch_seconds_monotone_in_fraction(prepared):
    fractions = [0.0, 0.2, 0.5, 1.0]
    arrays = [
        run_scaleout(
            3,
            GOLDEN_PLATFORM,
            prepared,
            cross_partition_fraction=fraction,
            **GOLDEN_PARAMS,
        )
        for fraction in fractions
    ]
    seconds = [array.batch_seconds for array in arrays]
    assert seconds == sorted(seconds)
    assert seconds[-1] > seconds[0]


def test_measured_agrees_with_analytic_at_measured_ratio(prepared, sharded):
    """The analytic path reproduces the measured drain when fed its ratio."""
    analytic = run_scaleout(
        3,
        GOLDEN_PLATFORM,
        prepared,
        cross_partition_fraction=sharded.measured_remote_fraction,
        **GOLDEN_PARAMS,
    )
    # sanity: the measured ratio really is remote / candidate positions
    positions = tree_capacity(
        (GOLDEN_PARAMS["fanout"],) * GOLDEN_PARAMS["num_hops"]
    )
    candidates = (
        GOLDEN_PARAMS["batch_size"] * positions * GOLDEN_PARAMS["num_batches"]
    )
    assert sharded.measured_remote_fraction == pytest.approx(
        sharded.total_remote_vectors / candidates
    )
    assert analytic.p2p_seconds_per_batch == pytest.approx(
        sharded.p2p_seconds_per_batch
    )
    assert analytic.batch_seconds == pytest.approx(sharded.batch_seconds)


def test_validation():
    prepared = golden_prepared()
    with pytest.raises(ValueError):
        run_scaleout(0, GOLDEN_PLATFORM, prepared)
    with pytest.raises(ValueError):
        run_scaleout(3, GOLDEN_PLATFORM, prepared, batch_size=2)
    with pytest.raises(ValueError):
        run_scaleout(2, GOLDEN_PLATFORM, prepared, cross_partition_fraction=1.5)
