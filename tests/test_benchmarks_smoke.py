"""Smoke-run every benchmark entry point at minimum scale.

The figure benchmarks only execute at figure-generation time, so an API
drift that breaks one used to be discovered hours later. This suite
imports every ``benchmarks/bench_*.py`` and calls each ``test_*`` entry
point with miniature fixtures (256-node workloads, batch 8, one batch).

Paper-shape ``assert``s are *tolerated* at this scale — the qualitative
claims are pinned at a meaningful scale by ``test_paper_shapes.py`` —
but any import error, missing fixture, or crash inside a benchmark fails
here, in tier-1.
"""

from __future__ import annotations

import importlib.util
import inspect
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.directgraph import ImageCache
from repro.orchestrate import GridCell, ResultCache, run_grid
from repro.platforms import (
    PreparedWorkload,
    measure_query_latency,
    scaleout_outcome,
)
from repro.workloads import workload_by_name

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))

SMOKE_NODES = 256
SMOKE_BATCH = 8
SMOKE_NBATCH = 1


class _SmokeBenchmark:
    """Stands in for pytest-benchmark: run the function once, return it."""

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)


@pytest.fixture(scope="module")
def smoke_fixtures(tmp_path_factory):
    """Miniature stand-ins for everything benchmarks/conftest.py provides."""
    env = SimpleNamespace(
        nodes=SMOKE_NODES,
        batch=SMOKE_BATCH,
        nbatch=SMOKE_NBATCH,
        jobs=1,
        chunk=None,
    )
    cache = ResultCache(tmp_path_factory.mktemp("bench-smoke-cache"))
    icache = ImageCache(tmp_path_factory.mktemp("bench-smoke-images"))
    prepared = {}

    def prepared_cache(workload, page_size=4096):
        key = (workload, page_size)
        if key not in prepared:
            spec = workload_by_name(workload).scaled(env.nodes)
            prepared[key] = PreparedWorkload.prepare(spec, page_size=page_size)
        return prepared[key]

    def make_cell(platform, workload, ssd_config=None, **kwargs):
        params = dict(
            batch_size=env.batch,
            num_batches=env.nbatch,
            scaled_nodes=env.nodes,
            seed=0,
        )
        params.update(kwargs)
        return GridCell(
            platform=platform, workload=workload, ssd_config=ssd_config, **params
        )

    def grid_runner(cells):
        return run_grid(cells, jobs=env.jobs, cache=cache)

    def run_cache(platform, workload, ssd_config=None, config_key="default", **kwargs):
        del config_key
        cell = make_cell(platform, workload, ssd_config=ssd_config, **kwargs)
        return grid_runner([cell]).results[0]

    def scaleout_runner(num_devices, platform, workload, **kwargs):
        return scaleout_outcome(
            num_devices, platform, workload, jobs=env.jobs, cache=cache, **kwargs
        ).result

    def query_runner(platform, workload, **kwargs):
        return measure_query_latency(
            platform, workload, jobs=env.jobs, cache=cache, **kwargs
        )

    def serving_runner(platform, workload, qps_grid, **kwargs):
        from repro.serving import sweep_serving

        return sweep_serving(
            platform, workload, qps_grid, jobs=env.jobs, cache=cache, **kwargs
        )

    return {
        "benchmark": _SmokeBenchmark(),
        "bench_env": env,
        "prepared_cache": prepared_cache,
        "make_cell": make_cell,
        "grid_runner": grid_runner,
        "run_cache": run_cache,
        "scaleout_runner": scaleout_runner,
        "query_runner": query_runner,
        "serving_runner": serving_runner,
        "grid_cache": cache,
        "image_cache": icache,
        "bench_from_cache": False,
    }


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"bench_smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_benchmark_files_discovered():
    assert len(BENCH_FILES) >= 17, "benchmark suite shrank unexpectedly"


@pytest.mark.parametrize("bench_file", BENCH_FILES, ids=lambda p: p.stem)
def test_benchmark_smoke(bench_file, smoke_fixtures, capsys, monkeypatch):
    # benchmarks that scale via env read it at import time; shrink before load
    monkeypatch.setenv("REPRO_BENCH_INFLATION_NODES", "5000")
    monkeypatch.setenv("REPRO_BENCH_KERNEL_SCALE", "0.02")
    monkeypatch.setenv("REPRO_BENCH_KERNEL_REPEAT", "1")
    monkeypatch.setenv("REPRO_BENCH_GRID_CELLS", "4")
    monkeypatch.setenv("REPRO_BENCH_GRID_REPEAT", "1")
    monkeypatch.setenv("REPRO_BENCH_GRID_JOBS", "2")
    module = _load_module(bench_file)
    entry_points = [
        (name, fn)
        for name, fn in sorted(vars(module).items())
        if name.startswith("test_") and inspect.isfunction(fn)
    ]
    assert entry_points, f"{bench_file.name} defines no test entry points"

    for name, fn in entry_points:
        kwargs = {}
        for param in inspect.signature(fn).parameters:
            assert param in smoke_fixtures, (
                f"{bench_file.name}::{name} requests unknown fixture {param!r}"
            )
            kwargs[param] = smoke_fixtures[param]
        try:
            fn(**kwargs)
        except AssertionError:
            # paper-shape claims are not expected to hold at smoke scale;
            # they are pinned at regression scale in test_paper_shapes.py
            pass
        finally:
            capsys.readouterr()  # swallow the benchmark's table printing
