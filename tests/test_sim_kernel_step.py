"""The resumable kernel: ``step(max_events)`` / ``run_until_idle()``.

The batched grid executor interleaves many live kernels by slicing each
one with ``step``. These tests pin the contract that makes that safe:
any interleaving of slices delivers in exactly the order a single
``run()`` call would, budgets are honoured, and the recycling pools and
failure paths behave identically to the blocking form.
"""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.kernel import SimulationError

from test_kernel_ordering import GOLDEN_TRACE, _run_scenario


def _build_scenario_sim():
    """The mixed golden scenario from test_kernel_ordering, unstarted."""
    sim = Simulator()
    log = []

    def child():
        log.append((sim.now, "child.0"))
        yield sim.timeout(0.0)
        log.append((sim.now, "child.1"))

    def spawner():
        log.append((sim.now, "spawn"))
        yield sim.process(child())
        log.append((sim.now, "joined"))

    def waiter(name, delays):
        for i, d in enumerate(delays):
            yield sim.timeout(d)
            log.append((sim.now, f"{name}.{i}"))

    gate = sim.event()

    def opener():
        yield sim.timeout(0.5)
        log.append((sim.now, "open"))
        gate.succeed("key")

    def gated(name):
        value = yield gate
        log.append((sim.now, f"{name}:{value}"))

    def late_gated():
        yield sim.timeout(1.0)
        value = yield gate
        log.append((sim.now, f"late:{value}"))

    def fan_in():
        vals = yield AllOf(
            sim, [sim.timeout(1.5, "a"), sim.timeout(0.75, "b"), sim.timeout(1.5, "c")]
        )
        log.append((sim.now, "all:" + ",".join(vals)))
        idx, val = yield AnyOf(sim, [sim.timeout(9.0, "slow"), sim.timeout(0.0, "now")])
        log.append((sim.now, f"any:{idx}:{val}"))

    sim.process(spawner())
    sim.process(waiter("w1", [0.25, 0.25, 0.5]))
    sim.process(waiter("w2", [0.5, 0.5]))
    sim.process(opener())
    sim.process(gated("g1"))
    sim.process(gated("g2"))
    sim.process(late_gated())
    sim.process(fan_in())
    return sim, log


@pytest.mark.parametrize("slice_events", [1, 2, 3, 7, 4096])
def test_step_driven_scenario_matches_golden_trace(slice_events):
    """Any slice size delivers the golden scenario in run()'s order."""
    sim, log = _build_scenario_sim()
    while sim.step(slice_events):
        pass
    assert log == GOLDEN_TRACE
    assert sim.idle


def test_run_until_idle_matches_run():
    stepped_sim, stepped_log = _build_scenario_sim()
    stepped_sim.run_until_idle(slice_events=5)
    assert stepped_log == _run_scenario() == GOLDEN_TRACE


def test_step_and_run_interleave():
    """A simulation may switch freely between step slices and run()."""
    sim, log = _build_scenario_sim()
    sim.step(4)
    sim.run()
    assert log == GOLDEN_TRACE


def _churning_sim(n):
    sim = Simulator()

    def churn():
        for _ in range(n):
            yield sim.event().succeed("t")

    sim.process(churn())
    return sim


def test_step_budget_and_idle_signal():
    sim = _churning_sim(10)
    n = sim.step(3)
    assert n == 3 and not sim.idle
    total = n
    while True:
        n = sim.step(3)
        if n == 0:
            break
        total += n
    assert sim.idle
    assert sim.step(1) == 0  # idle steps stay idle
    # the stepped sim's exact op count matches a run()-driven twin
    twin = _churning_sim(10)
    twin.run()
    assert sim._seq == twin._seq
    assert sim.now == twin.now


def test_step_rejects_bad_budget():
    with pytest.raises(ValueError):
        Simulator().step(0)


def test_run_until_idle_counts_deliveries():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        yield sim.event().succeed("x")

    sim.process(worker())
    delivered = sim.run_until_idle(slice_events=2)
    assert delivered > 0 and sim.idle
    assert sim.now == 1.0


def test_interleaved_simulations_stay_independent():
    """Round-robin slices over two kernels reproduce their solo traces."""

    def build(tag):
        sim = Simulator()
        log = []

        def hop(i):
            yield sim.timeout(0.5 * (i % 3))
            log.append((sim.now, f"{tag}{i}"))
            yield sim.timeout(0.25)
            log.append((sim.now, f"{tag}{i}b"))

        for i in range(6):
            sim.process(hop(i))
        return sim, log

    solo_a = build("a")
    solo_a[0].run()
    solo_b = build("b")
    solo_b[0].run()

    sim_a, log_a = build("a")
    sim_b, log_b = build("b")
    live = [sim_a, sim_b]
    while live:
        live = [sim for sim in live if sim.step(2)]
    assert log_a == solo_a[1]
    assert log_b == solo_b[1]


def test_step_propagates_unwaited_process_failure():
    sim = Simulator()

    def dying():
        yield sim.timeout(0.1)
        raise RuntimeError("boom")

    sim.process(dying())
    with pytest.raises(RuntimeError, match="boom"):
        while sim.step(1):
            pass


def test_step_recycles_events_like_run():
    sim = _churning_sim(50)
    while sim.step(5):
        pass
    assert len(sim._event_pool) >= 1
    pooled = sim._event_pool[-1]
    assert pooled._triggered is False and pooled._processed is False
