"""Tests for the Table III workload registry."""

import pytest

from repro.workloads import (
    FEATURE_ELEM_BYTES,
    NODE_ID_BYTES,
    WORKLOADS,
    WorkloadSpec,
    workload_by_name,
    workload_names,
)

# Table IV raw sizes (GB)
PAPER_RAW_GB = {
    "reddit": 242.6,
    "amazon": 397.2,
    "movielens": 221.8,
    "ogbn": 30.02,
    "ppi": 37.1,
}


class TestRegistry:
    def test_all_five_benchmarks_present(self):
        assert set(workload_names()) == {
            "reddit",
            "amazon",
            "movielens",
            "ogbn",
            "ppi",
        }

    def test_lookup_case_insensitive(self):
        assert workload_by_name("REDDIT").name == "reddit"

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("imaginary")

    def test_raw_sizes_match_table4(self):
        for name, spec in WORKLOADS.items():
            assert spec.raw_size_gb == pytest.approx(
                PAPER_RAW_GB[name], rel=0.05
            ), name

    def test_ogbn_degree_is_28(self):
        """Stated explicitly in Section VII-F."""
        assert workload_by_name("ogbn").avg_degree == 28.0

    def test_feature_length_classes(self):
        """reddit/ppi are feature-heavy; movielens/ogbn feature-light."""
        dims = {name: spec.feature_dim for name, spec in WORKLOADS.items()}
        assert min(dims["reddit"], dims["ppi"]) > 4 * max(
            dims["movielens"], dims["ogbn"]
        )


class TestWorkloadSpec:
    def test_scaled_preserves_shape(self):
        spec = workload_by_name("amazon")
        small = spec.scaled(1000)
        assert small.num_nodes == 1000
        assert small.avg_degree == spec.avg_degree
        assert small.feature_dim == spec.feature_dim
        assert small.name == spec.name

    def test_instantiate_matches_spec(self):
        spec = workload_by_name("ogbn").scaled(2000)
        graph, features = spec.instantiate()
        assert graph.num_nodes == 2000
        assert features.num_nodes == 2000
        assert features.dim == spec.feature_dim
        assert graph.average_degree == pytest.approx(spec.avg_degree, rel=0.25)

    def test_raw_bytes_formula(self):
        spec = WorkloadSpec("x", num_nodes=10, avg_degree=5.0, feature_dim=4)
        expected = 10 * (4 * FEATURE_ELEM_BYTES + 5.0 * NODE_ID_BYTES)
        assert spec.raw_size_bytes == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", num_nodes=0, avg_degree=5.0, feature_dim=4)
        with pytest.raises(ValueError):
            WorkloadSpec("x", num_nodes=10, avg_degree=0.5, feature_dim=4)
        with pytest.raises(ValueError):
            WorkloadSpec("x", num_nodes=10, avg_degree=5.0, feature_dim=0)
        with pytest.raises(ValueError):
            WorkloadSpec(
                "x", num_nodes=10, avg_degree=5.0, feature_dim=4,
                degree_family="zipf",
            )

    def test_degree_families_differ(self):
        uniform = WorkloadSpec(
            "u", num_nodes=3000, avg_degree=30.0, feature_dim=4,
            degree_family="uniform",
        ).build_graph()
        heavy = WorkloadSpec(
            "p", num_nodes=3000, avg_degree=30.0, feature_dim=4,
            degree_family="powerlaw",
        ).build_graph()
        assert heavy.degrees().max() > 2 * uniform.degrees().max()
