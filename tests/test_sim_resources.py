"""Unit tests for simulation resources: Resource, BandwidthPipe, Store."""

import pytest

from repro.sim import BandwidthPipe, Resource, Simulator, Store


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def proc(sim, tag, hold):
            yield res.acquire()
            start = sim.now
            yield sim.timeout(hold)
            res.release()
            log.append((tag, start, sim.now))

        sim.process(proc(sim, "a", 2.0))
        sim.process(proc(sim, "b", 1.0))
        sim.run()
        assert log == [("a", 0.0, 2.0), ("b", 2.0, 3.0)]

    def test_capacity_two_allows_parallelism(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        done = []

        def proc(sim, tag):
            yield res.acquire()
            yield sim.timeout(1.0)
            res.release()
            done.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.process(proc(sim, tag))
        sim.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def holder(sim):
            yield res.acquire()
            yield sim.timeout(1.0)
            res.release()

        def waiter(sim, tag, arrive):
            yield sim.timeout(arrive)
            yield res.acquire()
            order.append(tag)
            res.release()

        sim.process(holder(sim))
        sim.process(waiter(sim, "first", 0.1))
        sim.process(waiter(sim, "second", 0.2))
        sim.run()
        assert order == ["first", "second"]

    def test_busy_tracker_records_usage(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="core")

        def proc(sim):
            yield res.acquire()
            yield sim.timeout(5.0)
            res.release()

        sim.process(proc(sim))
        sim.run()
        assert res.tracker.busy_time() == pytest.approx(5.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)


class TestBandwidthPipe:
    def test_single_transfer_time(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bytes_per_sec=1000.0, per_transfer_overhead=0.5)
        done = []

        def proc(sim):
            yield pipe.transfer(1000)
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_transfers_serialize_fifo(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bytes_per_sec=1000.0)
        done = []

        def proc(sim, tag, nbytes):
            yield pipe.transfer(nbytes)
            done.append((tag, sim.now))

        sim.process(proc(sim, "a", 1000))
        sim.process(proc(sim, "b", 500))
        sim.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(1.5))]

    def test_pipe_idles_then_resumes(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bytes_per_sec=1000.0)
        done = []

        def proc(sim):
            yield pipe.transfer(1000)  # ends at 1.0
            yield sim.timeout(5.0)  # idle gap
            yield pipe.transfer(1000)  # 6.0 -> 7.0
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [pytest.approx(7.0)]
        assert pipe.tracker.busy_time() == pytest.approx(2.0)

    def test_counters(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bytes_per_sec=100.0)

        def proc(sim):
            yield pipe.transfer(10)
            yield pipe.transfer(30)

        sim.process(proc(sim))
        sim.run()
        assert pipe.bytes_moved == 40
        assert pipe.transfer_count == 2

    def test_zero_byte_transfer_takes_overhead_only(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bytes_per_sec=100.0, per_transfer_overhead=0.25)
        done = []

        def proc(sim):
            yield pipe.transfer(0)
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [pytest.approx(0.25)]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BandwidthPipe(sim, bytes_per_sec=0.0)
        pipe = BandwidthPipe(sim, bytes_per_sec=10.0)
        with pytest.raises(ValueError):
            pipe.transfer(-1)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((sim.now, item))

        store.put("x")
        sim.process(consumer(sim))
        sim.run()
        assert got == [(0.0, "x")]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(2.0)
            store.put("late")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [(2.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for item in (1, 2, 3):
            store.put(item)
        sim.process(consumer(sim))
        sim.run()
        assert got == [1, 2, 3]

    def test_len_and_peek(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.peek_all() == ("a", "b")
