"""Tests for the reference GraphSage sampler and its determinism contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import (
    child_position,
    depth_offsets,
    power_law_graph,
    ring_of_cliques,
    sample_minibatch,
    sample_subgraph,
    tree_capacity,
)
from repro.isc import counter_draw


class TestHeapNumbering:
    def test_depth_offsets_paper_config(self):
        assert depth_offsets((3, 3, 3)) == [0, 1, 4, 13]

    def test_tree_capacity_paper_config(self):
        assert tree_capacity((3, 3, 3)) == 40

    def test_child_positions_are_unique_and_contiguous(self):
        fanouts = (3, 3)
        offsets = depth_offsets(fanouts)
        seen = set()
        for parent in range(offsets[1], offsets[2]):  # depth-1 positions
            for j in range(3):
                pos = child_position(fanouts, parent, 2, j)
                assert pos not in seen
                seen.add(pos)
        assert seen == set(range(4, 13))

    def test_child_position_root(self):
        assert child_position((2, 2), 0, 1, 0) == 1
        assert child_position((2, 2), 0, 1, 1) == 2

    def test_child_position_bounds(self):
        with pytest.raises(ValueError):
            child_position((3,), 0, 2, 0)  # depth beyond fanouts
        with pytest.raises(ValueError):
            child_position((3,), 0, 1, 3)  # j >= fanout


class TestCounterDraw:
    def test_deterministic(self):
        assert counter_draw(7, 1, 2, 3) == counter_draw(7, 1, 2, 3)

    def test_key_sensitivity(self):
        base = counter_draw(7, 1, 2, 3)
        assert counter_draw(7, 1, 2, 4) != base
        assert counter_draw(8, 1, 2, 3) != base
        assert counter_draw(7, 2, 1, 3) != base

    def test_range(self):
        for k in range(100):
            v = counter_draw(1, k)
            assert 0 <= v < 2**64

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**63), st.integers(min_value=0, max_value=2**63))
    def test_uniform_64bit(self, seed, key):
        v = counter_draw(seed, key)
        assert 0 <= v < 2**64


class TestSampleSubgraph:
    def test_tree_size_full_fanout(self):
        g = ring_of_cliques(4, 5)  # every node has degree >= 4
        sg = sample_subgraph(g, target=0, fanouts=(3, 3, 3), seed=42)
        # 1 + 3 + 9 + 27 = 40 positions, the paper's configuration
        assert sg.num_positions == 40
        assert len(sg.positions_at_depth(0)) == 1
        assert len(sg.positions_at_depth(1)) == 3
        assert len(sg.positions_at_depth(3)) == 27

    def test_edges_are_real(self):
        g = power_law_graph(300, 12.0, seed=1)
        sg = sample_subgraph(g, target=7, fanouts=(3, 3), seed=5)
        sg.validate_against(g)  # raises on any fake edge

    def test_deterministic_for_seed(self):
        g = power_law_graph(300, 12.0, seed=1)
        a = sample_subgraph(g, 5, (3, 3, 3), seed=9)
        b = sample_subgraph(g, 5, (3, 3, 3), seed=9)
        assert a.canonical() == b.canonical()

    def test_seed_changes_samples(self):
        g = power_law_graph(300, 12.0, seed=1)
        a = sample_subgraph(g, 5, (3, 3, 3), seed=9)
        b = sample_subgraph(g, 5, (3, 3, 3), seed=10)
        assert a.canonical() != b.canonical()

    def test_zero_fanout_gives_root_only(self):
        g = ring_of_cliques(2, 3)
        sg = sample_subgraph(g, 0, fanouts=(0,), seed=1)
        assert sg.num_positions == 1

    def test_parent_links_consistent(self):
        g = power_law_graph(100, 8.0, seed=2)
        sg = sample_subgraph(g, 3, (2, 2), seed=3)
        for node in sg.nodes.values():
            if node.parent >= 0:
                parent = sg.nodes[node.parent]
                assert parent.depth == node.depth - 1
                assert parent.position == node.parent

    def test_target_out_of_range(self):
        g = ring_of_cliques(2, 3)
        with pytest.raises(IndexError):
            sample_subgraph(g, 99, (3,), seed=0)

    def test_minibatch_covers_all_targets(self):
        g = power_law_graph(200, 10.0, seed=4)
        sgs = sample_minibatch(g, [1, 2, 3], (3, 3), seed=0)
        assert [sg.target for sg in sgs] == [1, 2, 3]

    def test_unique_node_ids_subset_of_graph(self):
        g = power_law_graph(150, 10.0, seed=8)
        sg = sample_subgraph(g, 0, (3, 3, 3), seed=1)
        assert all(0 <= v < 150 for v in sg.unique_node_ids())

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        target=st.integers(min_value=0, max_value=99),
    )
    def test_sampled_edges_always_valid(self, seed, target):
        g = power_law_graph(100, 6.0, seed=17)
        sg = sample_subgraph(g, target, (3, 3), seed=seed)
        sg.validate_against(g)
