"""Tests for the functional channel-level command router."""

import pytest

from repro.directgraph import SectionAddress
from repro.isc import CommandKind, SamplingCommand
from repro.isc.router import CommandRouter, RouteInfo
from repro.ssd import FlashConfig


def cmd_for_page(page):
    return SamplingCommand(
        kind=CommandKind.SAMPLE_PRIMARY,
        address=SectionAddress(page, 0),
        target=0,
        hop=0,
        position=0,
    )


@pytest.fixture
def router():
    return CommandRouter(FlashConfig(num_channels=4, dies_per_channel=2))


class TestRouting:
    def test_route_matches_geometry(self, router):
        info = router.route_of(cmd_for_page(5))
        assert info == RouteInfo(channel=1, die=1)  # 5 % 4, (5 // 4) % 2

    def test_dispatch_enqueues_on_destination(self, router):
        route = router.dispatch(cmd_for_page(6))
        assert router.pending(route.channel, route.die) == 1
        assert router.pending((route.channel + 1) % 4) == 0

    def test_cross_channel_hops_counted(self, router):
        route = router.dispatch(cmd_for_page(6), source_channel=0)
        assert route.channel == 2
        assert router.cross_channel_hops == 1
        router.dispatch(cmd_for_page(2), source_channel=2)  # same channel
        assert router.cross_channel_hops == 1

    def test_commands_routed_counter(self, router):
        for page in range(8):
            router.dispatch(cmd_for_page(page))
        assert router.commands_routed == 8


class TestRoundRobinIssuer:
    def test_issues_to_idle_die(self, router):
        router.dispatch(cmd_for_page(0))  # channel 0, die 0
        result = router.issue_next(0, die_idle=[True, True])
        assert result is not None
        die, command = result
        assert die == 0
        assert router.pending(0) == 0

    def test_busy_die_skipped(self, router):
        router.dispatch(cmd_for_page(0))  # ch 0 die 0
        router.dispatch(cmd_for_page(4))  # ch 0 die 1
        result = router.issue_next(0, die_idle=[False, True])
        assert result[0] == 1

    def test_round_robin_fairness(self, router):
        # two commands per die on channel 0
        for _ in range(2):
            router.dispatch(cmd_for_page(0))
            router.dispatch(cmd_for_page(4))
        order = [router.issue_next(0, [True, True])[0] for _ in range(4)]
        assert order == [0, 1, 0, 1]

    def test_nothing_to_issue(self, router):
        assert router.issue_next(0, [True, True]) is None
        router.dispatch(cmd_for_page(0))
        assert router.issue_next(0, [False, False]) is None

    def test_die_idle_length_checked(self, router):
        with pytest.raises(ValueError):
            router.issue_next(0, [True])


class TestClassification:
    def test_classify_splits_commands_and_features(self):
        from repro.isc.sampler import SampleResult

        children = [cmd_for_page(1), cmd_for_page(2)]
        result = SampleResult(
            command=cmd_for_page(0),
            record=None,
            feature_bytes=b"\x00" * 64,
            children=children,
        )
        cmds, feat = CommandRouter.classify(result)
        assert cmds == children
        assert feat == 64

    def test_classify_no_feature(self):
        from repro.isc.sampler import SampleResult

        result = SampleResult(
            command=cmd_for_page(0), record=None, feature_bytes=None
        )
        cmds, feat = CommandRouter.classify(result)
        assert cmds == [] and feat == 0
