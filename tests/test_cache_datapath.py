"""Differential contracts for the in-datapath page cache.

Three pins, per ISSUE 7:

* **disabled == seed, bit for bit** — a ``None`` cache config and any
  config whose capacity rounds to zero pages must reproduce the golden
  RunResult sha256 digests captured from the seed kernel, on every
  registered platform;
* **Belady bounds every online policy** at every swept capacity;
* **offline replay is exact** — replaying a cache's recorded access
  trace through the same policy engine reproduces the measured
  hit/miss/eviction counts, and the canonical-trace replay in
  ``sweep_cache`` agrees with the in-datapath hit rate.

Plus the perf claims the ablation rests on: a warm cache strictly
shortens simulated latency without changing *which* nodes get sampled,
and cached runs are repeatable (the decoded-section memo on the hit path
is invisible in results).
"""

import hashlib
import json
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from tools.capture_golden import (  # noqa: E402
    FIXTURE,
    GOLDEN_PARAMS,
    GOLDEN_WORKLOAD,
)

from repro.cache import CacheConfig, replay_trace, sweep_cache  # noqa: E402
from repro.orchestrate import ResultCache  # noqa: E402
from repro.orchestrate.cache import json_default  # noqa: E402
from repro.orchestrate.serialize import (  # noqa: E402
    result_from_payload,
    result_to_payload,
)
from repro.platforms import (  # noqa: E402
    PLATFORMS,
    PreparedWorkload,
    run_platform,
)
from repro.workloads import workload_by_name  # noqa: E402

CACHE_MB = 0.5
PAGE_SIZE = 4096


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def prepared():
    spec = workload_by_name(GOLDEN_WORKLOAD).scaled(GOLDEN_PARAMS["scaled_nodes"])
    return PreparedWorkload.prepare(spec)


def digest(platform, prepared, **kwargs):
    result = run_platform(platform, prepared, **GOLDEN_PARAMS, **kwargs)
    payload = result_to_payload(result)
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=json_default
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
def test_disabled_cache_matches_golden_digest(platform, prepared, golden):
    """Explicit ``page_cache=None`` is the seed configuration, bit for bit."""
    assert digest(platform, prepared, page_cache=None) == golden[platform]


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
def test_zero_size_cache_matches_golden_digest(platform, prepared, golden):
    """A capacity that rounds to zero pages disables the cache entirely."""
    zero = CacheConfig(capacity_mb=0.0)
    assert digest(platform, prepared, page_cache=zero) == golden[platform]
    sub_page = CacheConfig(capacity_mb=0.001)  # 1000 bytes < one page
    assert digest(platform, prepared, page_cache=sub_page) == golden[platform]


def test_cached_run_is_repeatable(prepared):
    """Two identical cached runs serialize byte-identically (the decoded-
    section memo on the hit path never leaks into results)."""
    config = CacheConfig(capacity_mb=CACHE_MB, policy="clock")
    first = digest("bg2", prepared, page_cache=config)
    second = digest("bg2", prepared, page_cache=config)
    assert first == second


# test_cache_never_changes_what_gets_sampled moved to
# tests/test_platform_conformance.py, parametrized over every registered
# platform instead of a hard-coded ["bg2", "cc"] pair.


def test_warm_cache_shortens_simulated_latency(prepared):
    uncached = run_platform("bg2", prepared, **GOLDEN_PARAMS)
    cached = run_platform(
        "bg2",
        prepared,
        **GOLDEN_PARAMS,
        page_cache=CacheConfig(capacity_mb=8.0),
    )
    assert cached.cache["hit_rate"] > 0.3
    assert cached.total_seconds < uncached.total_seconds


def test_cache_counters_in_meters_and_result(prepared):
    result = run_platform(
        "bg2",
        prepared,
        **GOLDEN_PARAMS,
        page_cache=CacheConfig(capacity_mb=CACHE_MB),
    )
    block = result.cache
    assert block["policy"] == "lru"
    assert block["hits"] > 0 and block["misses"] > 0
    assert block["hits"] + block["misses"] == pytest.approx(
        result.meters.totals["page_cache_hits"]
        + result.meters.totals["page_cache_misses"]
    )
    assert result.meters.totals["page_cache_hits"] == float(block["hits"])
    assert result.meters.totals["page_cache_evictions"] == float(
        block["evictions"]
    )
    # uncached runs carry no cache block and no cache meters
    bare = run_platform("bg2", prepared, **GOLDEN_PARAMS)
    assert bare.cache is None
    assert "page_cache_hits" not in bare.meters.totals


def test_recorded_trace_replay_reproduces_measured_counts(prepared):
    """The differential contract: same policy code offline and online."""
    for policy in ("lru", "lfu", "clock"):
        config = CacheConfig(
            capacity_mb=CACHE_MB, policy=policy, record_trace=True
        )
        result = run_platform(
            "bg2", prepared, **GOLDEN_PARAMS, page_cache=config
        )
        block = result.cache
        capacity = config.capacity_pages(PAGE_SIZE)
        replayed = replay_trace(block["trace"], policy, capacity)
        assert (replayed.hits, replayed.misses, replayed.evictions) == (
            block["hits"],
            block["misses"],
            block["evictions"],
        ), policy


def test_cache_block_round_trips_through_payload(prepared):
    result = run_platform(
        "bg2",
        prepared,
        **GOLDEN_PARAMS,
        sample_trace=True,
        page_cache=CacheConfig(capacity_mb=CACHE_MB),
    )
    restored = result_from_payload(result_to_payload(result))
    assert restored.cache == result.cache
    assert len(restored.sample_trace) == len(result.sample_trace)
    for a, b in zip(restored.sample_trace, result.sample_trace):
        assert np.array_equal(a, b)


class TestSweep:
    CAPACITIES = (0.0625, 0.25, 1.0)
    POLICIES = ("lru", "lfu", "clock")

    @pytest.fixture(scope="class")
    def outcome(self, prepared):
        return sweep_cache(
            "bg2",
            prepared,
            capacities_mb=self.CAPACITIES,
            policies=self.POLICIES,
            batch_size=GOLDEN_PARAMS["batch_size"],
            num_batches=GOLDEN_PARAMS["num_batches"],
            num_hops=GOLDEN_PARAMS["num_hops"],
            fanout=GOLDEN_PARAMS["fanout"],
            seed=GOLDEN_PARAMS["seed"],
        )

    def test_belady_dominates_every_online_policy_at_every_size(self, outcome):
        sweep = outcome.sweep
        for capacity in sweep.capacities_mb:
            optimal = sweep.belady_hit_rate(capacity)
            for policy in sweep.policies:
                point = sweep.point(policy, capacity)
                assert optimal >= point.replay_hit_rate - 1e-12, (
                    policy,
                    capacity,
                )

    def test_replayed_hit_rate_tracks_measured(self, outcome):
        """Canonical-trace replay approximates the in-datapath rate; at
        the largest capacity (working set resident) they coincide."""
        sweep = outcome.sweep
        for policy in sweep.policies:
            point = sweep.point(policy, max(sweep.capacities_mb))
            assert point.hit_rate == pytest.approx(
                point.replay_hit_rate, abs=0.05
            ), policy

    def test_latency_improves_with_capacity(self, outcome):
        sweep = outcome.sweep
        for policy in sweep.policies:
            best = sweep.point(policy, max(sweep.capacities_mb))
            assert best.total_seconds < sweep.baseline_seconds, policy

    def test_document_round_trips_through_result_cache(self, prepared, tmp_path):
        cache = ResultCache(tmp_path / "results")
        kwargs = dict(
            capacities_mb=(0.25,),
            policies=("lru",),
            batch_size=GOLDEN_PARAMS["batch_size"],
            num_batches=GOLDEN_PARAMS["num_batches"],
            num_hops=GOLDEN_PARAMS["num_hops"],
            fanout=GOLDEN_PARAMS["fanout"],
            seed=GOLDEN_PARAMS["seed"],
        )
        cold = sweep_cache("bg2", prepared, cache=cache, **kwargs)
        assert not cold.from_cache
        assert cold.cells_executed > 0
        warm = sweep_cache("bg2", prepared, cache=cache, **kwargs)
        assert warm.from_cache
        assert warm.sweep.to_dict() == cold.sweep.to_dict()
        # require_cached renders from the document without simulating
        served = sweep_cache(
            "bg2", prepared, cache=cache, require_cached=True, **kwargs
        )
        assert served.from_cache
        assert served.cells_executed == 0

    def test_require_cached_raises_on_cold_cache(self, prepared, tmp_path):
        with pytest.raises(KeyError):
            sweep_cache(
                "bg2",
                prepared,
                capacities_mb=(0.25,),
                policies=("lru",),
                batch_size=GOLDEN_PARAMS["batch_size"],
                num_batches=GOLDEN_PARAMS["num_batches"],
                num_hops=GOLDEN_PARAMS["num_hops"],
                fanout=GOLDEN_PARAMS["fanout"],
                cache=ResultCache(tmp_path / "empty"),
                require_cached=True,
            )
