"""Tests for JSON/CSV result export."""

import csv
import json

import pytest

from repro.bench import result_to_dict, write_json, write_series_csv
from repro.platforms import PreparedWorkload, run_platform
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def result():
    prepared = PreparedWorkload.prepare(workload_by_name("ogbn").scaled(512))
    return run_platform("bg2", prepared, batch_size=8, num_batches=2)


class TestResultToDict:
    def test_contains_headline_metrics(self, result):
        data = result_to_dict(result)
        assert data["platform"] == "bg2"
        assert data["throughput_targets_per_sec"] > 0
        assert len(data["batches"]) == 2
        assert "wait_before_flash" in data["command_breakdown"]

    def test_json_serializable(self, result):
        json.dumps(result_to_dict(result))  # must not raise

    def test_series_lengths(self, result):
        data = result_to_dict(result, series_bins=17)
        assert len(data["utilization"]["die_time"]) == 17
        assert len(data["utilization"]["die_active"]) == 17


class TestWriters:
    def test_write_single_json(self, result, tmp_path):
        path = write_json(result, tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        assert loaded["workload"] == "ogbn"

    def test_write_many_json(self, result, tmp_path):
        path = write_json([result, result], tmp_path / "runs.json")
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list) and len(loaded) == 2

    def test_write_series_csv(self, result, tmp_path):
        path = write_series_csv(result, tmp_path / "util.csv", bins=12)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["time_s", "active_dies", "active_channels"]
        assert len(rows) == 13
        assert float(rows[1][1]) >= 0.0
