"""Unit tests for the page cache: policies, config, offline replay.

Everything here runs on hand-built page sequences — no simulator. The
datapath integration and the differential measured-vs-replayed contract
live in ``tests/test_cache_datapath.py``.
"""

import pytest

from repro.cache import (
    DEFAULT_HIT_LATENCY_S,
    POLICIES,
    REPLAY_POLICIES,
    CacheConfig,
    PageCache,
    belady_replay,
    hit_rate_curves,
    replay_trace,
)


class TestCacheConfig:
    def test_capacity_pages_decimal_megabytes(self):
        assert CacheConfig(capacity_mb=1.0).capacity_pages(4096) == 244
        assert CacheConfig(capacity_mb=0.25).capacity_pages(4096) == 61

    def test_zero_capacity_rounds_to_disabled(self):
        tiny = CacheConfig(capacity_mb=0.001)  # 1000 bytes < one page
        assert tiny.capacity_pages(4096) == 0
        assert PageCache.from_config(tiny, 4096) is None
        assert PageCache.from_config(None, 4096) is None
        assert PageCache.from_config(CacheConfig(capacity_mb=0.0), 4096) is None

    def test_from_config_builds_matching_cache(self):
        config = CacheConfig(
            capacity_mb=1.0, policy="clock", hit_latency_s=1e-7, record_trace=True
        )
        cache = PageCache.from_config(config, 4096)
        assert cache.capacity_pages == 244
        assert cache.policy == "clock"
        assert cache.hit_latency_s == 1e-7
        assert cache.trace == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_mb=-1.0)
        with pytest.raises(ValueError):
            CacheConfig(capacity_mb=1.0, policy="fifo")
        with pytest.raises(ValueError):
            CacheConfig(capacity_mb=1.0, hit_latency_s=-1.0)
        with pytest.raises(ValueError):
            PageCache(0)
        with pytest.raises(ValueError):
            PageCache(4, policy="belady")  # offline-only, not a live policy

    def test_hashable_for_grid_identity(self):
        a = CacheConfig(capacity_mb=1.0, policy="lru")
        b = CacheConfig(capacity_mb=1.0, policy="lru")
        assert hash(a) == hash(b) and a == b
        assert a != CacheConfig(capacity_mb=1.0, policy="lfu")


class TestPoliciesOnSmallTraces:
    def test_lru_evicts_least_recent(self):
        cache = PageCache(2, policy="lru")
        for page in (1, 2, 1, 3):  # touch 1, then 3 evicts 2
            cache.access(page)
        assert 1 in cache and 3 in cache and 2 not in cache
        assert (cache.hits, cache.misses, cache.evictions) == (1, 3, 1)

    def test_lfu_evicts_least_frequent(self):
        cache = PageCache(2, policy="lfu")
        for page in (1, 1, 2, 3):  # 1 has freq 2; 3 evicts 2
            cache.access(page)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_lfu_ties_break_least_recent(self):
        cache = PageCache(2, policy="lfu")
        for page in (1, 2, 3):  # freq tie between 1 and 2: evict older 1
            cache.access(page)
        assert 2 in cache and 3 in cache and 1 not in cache

    def test_clock_gives_second_chances(self):
        cache = PageCache(3, policy="clock")
        # 4 sweeps the full ring (all bits set) and evicts 1; the sweep
        # leaves 2 and 3 with cleared bits. Touching 2 re-arms it, so the
        # next eviction passes over 2 and takes 3 — the second chance.
        for page in (1, 2, 3, 4, 2, 5):
            cache.access(page)
        assert 2 in cache and 4 in cache and 5 in cache
        assert 3 not in cache

    @pytest.mark.parametrize("policy", POLICIES)
    def test_counters_and_capacity_invariants(self, policy):
        cache = PageCache(8, policy=policy)
        pages = [(7 * i + i * i) % 40 for i in range(400)]
        for page in pages:
            cache.access(page)
        assert cache.accesses == len(pages)
        assert cache.hits + cache.misses == cache.accesses
        assert len(cache) <= cache.capacity_pages
        assert cache.evictions == cache.misses - len(cache)
        assert 0.0 < cache.hit_rate < 1.0

    def test_recorded_trace_is_the_access_sequence(self):
        cache = PageCache(2, policy="lru", record_trace=True)
        for page in (5, 6, 5, 7):
            cache.access(page)
        assert cache.trace == [5, 6, 5, 7]
        assert cache.stats_dict()["trace"] == [5, 6, 5, 7]

    def test_stats_dict_shape(self):
        cache = PageCache(4)
        cache.access(1)
        stats = cache.stats_dict()
        assert stats == {
            "policy": "lru",
            "capacity_pages": 4,
            "hit_latency_s": DEFAULT_HIT_LATENCY_S,
            "hits": 0,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.0,
        }


def _reuse_trace(n=3000, pages=64, hot=8):
    """Deterministic mix of a hot set and a cold tail (no RNG needed)."""
    out = []
    for i in range(n):
        if i % 3:
            out.append(i * 31 % hot)  # hot set, frequent reuse
        else:
            out.append(hot + (i * 17) % (pages - hot))
    return out


class TestReplay:
    def test_zero_capacity_is_all_misses(self):
        trace = _reuse_trace(100)
        for policy in REPLAY_POLICIES:
            stats = replay_trace(trace, policy, 0)
            assert (stats.hits, stats.misses) == (0, len(trace))
            assert stats.hit_rate == 0.0

    def test_capacity_covering_working_set_only_cold_misses(self):
        trace = _reuse_trace()
        unique = len(set(trace))
        for policy in REPLAY_POLICIES:
            stats = replay_trace(trace, policy, unique)
            assert stats.misses == unique
            assert stats.evictions == 0

    def test_belady_small_example_by_hand(self):
        # Classic FIFO-vs-MIN sequence; MIN takes 7 misses at capacity 3.
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        stats = belady_replay(trace, 3)
        assert stats.misses == 7
        assert stats.hits == 5

    def test_belady_dominates_online_policies(self):
        trace = _reuse_trace()
        for capacity in (4, 8, 16, 32):
            optimal = belady_replay(trace, capacity).hit_rate
            for policy in POLICIES:
                online = replay_trace(trace, policy, capacity).hit_rate
                assert optimal >= online, (policy, capacity)

    def test_replay_matches_live_cache_counts(self):
        trace = _reuse_trace()
        for policy in POLICIES:
            live = PageCache(16, policy=policy, record_trace=True)
            for page in trace:
                live.access(page)
            replayed = replay_trace(live.trace, policy, 16)
            assert (replayed.hits, replayed.misses, replayed.evictions) == (
                live.hits,
                live.misses,
                live.evictions,
            )

    def test_hit_rate_curves_monotone_in_capacity(self):
        trace = _reuse_trace()
        curves = hit_rate_curves(trace, [4, 8, 16, 32, 64])
        assert sorted(curves) == sorted(REPLAY_POLICIES)
        for policy in ("lru", "lfu", "belady"):
            rates = curves[policy]
            assert all(b >= a for a, b in zip(rates, rates[1:])), policy
        # belady is the upper envelope pointwise
        for i in range(5):
            for policy in POLICIES:
                assert curves["belady"][i] >= curves[policy][i]
