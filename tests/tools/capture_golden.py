"""Regenerate the kernel bit-identity fixture.

Runs every registered platform on a small pinned-seed workload and
records the sha256 of each canonical serialized ``RunResult`` payload.
``tests/test_kernel_bit_identity.py`` asserts the current kernel still
produces byte-identical payloads, so any event-ordering change in
``repro.sim.kernel`` (or allocation tweak that leaks into results) fails
loudly.

Run from the repo root after an *intentional* semantic change only:

    PYTHONPATH=src python tests/tools/capture_golden.py
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

from repro.orchestrate.cache import json_default
from repro.orchestrate.serialize import result_to_payload
from repro.platforms import PLATFORMS, PreparedWorkload, run_platform
from repro.workloads import workload_by_name

FIXTURE = Path(__file__).resolve().parent.parent / "data" / "golden_runresult_sha256.json"

# Small but exercises every code path: secondary sections, feature
# fetches, hop barriers, and the streaming routers.
GOLDEN_PARAMS = dict(
    batch_size=8,
    num_batches=2,
    num_hops=2,
    fanout=2,
    seed=0,
    scaled_nodes=256,
)
GOLDEN_WORKLOAD = "ogbn"


def payload_digest(platform: str, prepared: PreparedWorkload) -> str:
    result = run_platform(platform, prepared, **GOLDEN_PARAMS)
    payload = result_to_payload(result)
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=json_default
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def compute_digests() -> dict:
    spec = workload_by_name(GOLDEN_WORKLOAD).scaled(GOLDEN_PARAMS["scaled_nodes"])
    prepared = PreparedWorkload.prepare(spec)
    return {name: payload_digest(name, prepared) for name in sorted(PLATFORMS)}


def main() -> int:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    digests = compute_digests()
    FIXTURE.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    for name, digest in digests.items():
        print(f"  {name:10s} {digest[:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
