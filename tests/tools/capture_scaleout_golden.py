"""Regenerate the scale-out sharding bit-identity fixture.

Runs the sharded N-SSD array model on a small pinned-seed workload and
records the sha256 of each canonical serialized ``ScaleOutResult``
payload. ``tests/test_scaleout_sharding.py`` asserts the current model
still produces byte-identical payloads — any drift in the hash
partition, shard seed derivation, sampling traces, or exchange
accounting fails loudly, and the same digests pin ``jobs=N`` to
``jobs=1``.

Run from the repo root after an *intentional* semantic change only:

    PYTHONPATH=src python tests/tools/capture_scaleout_golden.py
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

from repro.orchestrate.cache import json_default
from repro.orchestrate.serialize import scaleout_to_payload
from repro.platforms import PreparedWorkload
from repro.platforms.scaleout import run_scaleout
from repro.workloads import workload_by_name

FIXTURE = (
    Path(__file__).resolve().parent.parent / "data" / "golden_scaleout_sha256.json"
)

GOLDEN_WORKLOAD = "ogbn"
GOLDEN_NODES = 256
GOLDEN_PLATFORM = "bg2"
# batch 8 on 3 devices exercises the non-divisible shard remainder
GOLDEN_PARAMS = dict(
    batch_size=8,
    num_batches=2,
    num_hops=2,
    fanout=2,
    seed=0,
)
GOLDEN_DEVICES = (1, 3)


def golden_prepared() -> PreparedWorkload:
    spec = workload_by_name(GOLDEN_WORKLOAD).scaled(GOLDEN_NODES)
    return PreparedWorkload.prepare(spec)


def scaleout_digest(
    num_devices: int, prepared: PreparedWorkload, *, jobs: int = 1, **overrides
) -> str:
    params = {**GOLDEN_PARAMS, **overrides}
    result = run_scaleout(
        num_devices, GOLDEN_PLATFORM, prepared, jobs=jobs, **params
    )
    payload = scaleout_to_payload(result)
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=json_default
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def compute_digests() -> dict:
    prepared = golden_prepared()
    return {
        str(devices): scaleout_digest(devices, prepared)
        for devices in GOLDEN_DEVICES
    }


def main() -> int:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    digests = compute_digests()
    FIXTURE.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    for name, digest in digests.items():
        print(f"  {name:>2s} devices  {digest[:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
