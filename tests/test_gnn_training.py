"""Tests for GNN training: exact gradients and convergence."""

import numpy as np
import pytest

from repro.gnn import (
    DenseFeatureTable,
    GnnModel,
    ring_of_cliques,
    power_law_graph,
    sample_minibatch,
    sample_subgraph,
)
from repro.gnn.training import SgdTrainer, forward_backward, mse_loss


def setup(dim=3, hidden=4, layers=2, seed=0):
    graph = ring_of_cliques(3, 5)
    features = DenseFeatureTable.random(graph.num_nodes, dim, seed=seed)
    model = GnnModel.random(dim, hidden, layers, seed=seed + 1)
    return graph, features, model


class TestMseLoss:
    def test_zero_at_match(self):
        x = np.ones(4, dtype=np.float32)
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient_direction(self):
        pred = np.array([2.0, 0.0], dtype=np.float32)
        target = np.array([0.0, 0.0], dtype=np.float32)
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx(2.0)
        assert grad[0] > 0 and grad[1] == 0


class TestGradientCheck:
    def test_matches_numerical_gradient(self):
        """Finite-difference check of d_weight on a tiny model."""
        from repro.gnn.training import _forward_trace

        graph, features, model = setup()
        sg = sample_subgraph(graph, 0, (2, 2), seed=3)
        target = np.full(4, 0.5, dtype=np.float32)

        def loss_of_model():
            out, _ = _forward_trace(model, sg, features)
            return mse_loss(out, target)[0]

        out, _ = _forward_trace(model, sg, features)
        _loss, out_grad = mse_loss(out, target)
        grads = forward_backward(model, sg, features, out_grad)

        eps = 2e-3  # small enough to avoid crossing ReLU kinks
        rng = np.random.default_rng(0)
        for layer_index in range(model.num_layers):
            layer = model.layers[layer_index]
            for _ in range(4):  # spot-check several coordinates
                i = rng.integers(0, layer.out_dim)
                j = rng.integers(0, layer.in_dim)
                original = layer.weight[i, j]
                w_up = np.float16(float(original) + eps)
                w_down = np.float16(float(original) - eps)
                layer.weight[i, j] = w_up
                up = loss_of_model()
                layer.weight[i, j] = w_down
                down = loss_of_model()
                layer.weight[i, j] = original
                # use the *realized* FP16 perturbation as the step
                step = float(w_up) - float(w_down)
                numeric = (up - down) / step
                analytic = grads[layer_index].d_weight[i, j]
                assert analytic == pytest.approx(numeric, abs=0.05), (
                    layer_index, i, j,
                )

    def test_bias_gradient_numerical(self):
        from repro.gnn.training import _forward_trace

        graph, features, model = setup()
        sg = sample_subgraph(graph, 1, (2, 2), seed=5)
        target = np.zeros(4, dtype=np.float32)
        out, _ = _forward_trace(model, sg, features)
        _loss, out_grad = mse_loss(out, target)
        grads = forward_backward(model, sg, features, out_grad)
        layer = model.layers[-1]
        eps = 1e-2
        original = layer.bias[0]
        layer.bias[0] = np.float16(float(original) + eps)
        up = mse_loss(_forward_trace(model, sg, features)[0], target)[0]
        layer.bias[0] = np.float16(float(original) - eps)
        down = mse_loss(_forward_trace(model, sg, features)[0], target)[0]
        layer.bias[0] = original
        numeric = (up - down) / (2 * eps)
        assert grads[-1].d_bias[0] == pytest.approx(numeric, abs=0.05)


class TestSgdTrainer:
    def test_loss_decreases_on_regression_task(self):
        graph = power_law_graph(200, 8.0, seed=2)
        features = DenseFeatureTable.random(200, 4, seed=0)
        model = GnnModel.random(4, 6, 2, seed=3)
        trainer = SgdTrainer(model, learning_rate=0.05)
        rng = np.random.default_rng(1)
        targets_nodes = [int(v) for v in rng.integers(0, 200, size=16)]
        subgraphs = sample_minibatch(graph, targets_nodes, (3, 3), seed=4)
        labels = np.zeros((len(subgraphs), 6), dtype=np.float32)
        first = trainer.train_batch(subgraphs, features, labels)
        for _ in range(15):
            last = trainer.train_batch(subgraphs, features, labels)
        assert last < first * 0.8

    def test_history_recorded(self):
        graph, features, model = setup()
        trainer = SgdTrainer(model, learning_rate=0.01)
        sgs = sample_minibatch(graph, [0, 1], (2, 2), seed=0)
        labels = np.zeros((2, 4), dtype=np.float32)
        trainer.train_batch(sgs, features, labels)
        trainer.train_batch(sgs, features, labels)
        assert len(trainer.loss_history) == 2

    def test_mismatched_targets_rejected(self):
        graph, features, model = setup()
        trainer = SgdTrainer(model)
        sgs = sample_minibatch(graph, [0, 1], (2, 2), seed=0)
        with pytest.raises(ValueError):
            trainer.train_batch(sgs, features, np.zeros((3, 4)))

    def test_weights_change_after_step(self):
        graph, features, model = setup()
        before = model.layers[0].weight.copy()
        trainer = SgdTrainer(model, learning_rate=0.5)
        sgs = sample_minibatch(graph, [0], (2, 2), seed=0)
        trainer.train_batch(sgs, features, np.zeros((1, 4), dtype=np.float32))
        assert not np.array_equal(before, model.layers[0].weight)
