"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


def test_timeout_fires_at_delay():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(0.5)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [1.5, 2.0]


def test_timeout_value_delivery():
    sim = Simulator()
    seen = []

    def proc(sim):
        val = yield sim.timeout(1.0, value="payload")
        seen.append(val)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_zero_timeout_runs_in_creation_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(0.0)
        order.append(tag)

    sim.process(proc(sim, "a"))
    sim.process(proc(sim, "b"))
    sim.run()
    assert order == ["a", "b"]


def test_manual_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    woke = []

    def waiter(sim):
        val = yield gate
        woke.append((sim.now, val))

    def opener(sim):
        yield sim.timeout(3.0)
        gate.succeed(42)

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert woke == [(3.0, 42)]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_raises_in_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield gate
        except ValueError as err:
            caught.append(str(err))

    sim.process(waiter(sim))
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_return_value_propagates():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return "child-result"

    def parent(sim):
        val = yield sim.process(child(sim))
        results.append(val)

    sim.process(parent(sim))
    sim.run()
    assert results == ["child-result"]


def test_process_exception_propagates_to_parent():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("child failed")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except RuntimeError as err:
            caught.append(str(err))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child failed"]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 17

    proc = sim.process(bad(sim))
    # nobody waits on the process, so run() surfaces the failure
    with pytest.raises(SimulationError):
        sim.run()
    assert proc.triggered


def test_watched_process_failure_not_reraised_by_run():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("expected")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError:
            pass

    sim.process(parent(sim))
    sim.run()  # must not raise: the parent handled it


def test_all_of_waits_for_every_child():
    sim = Simulator()
    got = []

    def proc(sim):
        vals = yield AllOf(sim, [sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
        got.append((sim.now, vals))

    sim.process(proc(sim))
    sim.run()
    assert got == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def proc(sim):
        vals = yield AllOf(sim, [])
        got.append((sim.now, vals))

    sim.process(proc(sim))
    sim.run()
    assert got == [(0.0, [])]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def proc(sim):
        idx_val = yield AnyOf(sim, [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        got.append((sim.now, idx_val))

    sim.process(proc(sim))
    sim.run()
    assert got == [(1.0, (1, "fast"))]


def test_waiting_on_already_fired_event():
    sim = Simulator()
    got = []

    def late(sim, ev):
        yield sim.timeout(2.0)
        val = yield ev  # already fired at t=0
        got.append((sim.now, val))

    ev = sim.event()
    ev.succeed("early")
    sim.process(late(sim, ev))
    sim.run()
    assert got == [(2.0, "early")]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_value_read_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_many_interleaved_processes_keep_time_monotone():
    sim = Simulator()
    stamps = []

    def proc(sim, delay, reps):
        for _ in range(reps):
            yield sim.timeout(delay)
            stamps.append(sim.now)

    for d in (0.3, 0.7, 1.1):
        sim.process(proc(sim, d, 10))
    sim.run()
    assert stamps == sorted(stamps)
    assert len(stamps) == 30
