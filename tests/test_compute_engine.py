"""Unit tests for the compute-stage engine (in-SSD vs discrete paths)."""

import pytest

from repro.isc import GnnTaskConfig
from repro.platforms import platform_by_name
from repro.platforms.compute import ComputeEngine
from repro.sim import Simulator
from repro.ssd import DieExecution, SsdDevice, ull_ssd
from repro.sim.stats import Meter


def make_engine(platform_name, batch_task=None):
    sim = Simulator()
    device = SsdDevice(sim, ull_ssd(), lambda job: DieExecution(0.0, 4096))
    task = batch_task or GnnTaskConfig(
        num_hops=3, fanout=3, feature_dim=128, seed=0
    )
    meters = Meter()
    engine = ComputeEngine(
        sim, device, platform_by_name(platform_name), task, 128, meters
    )
    return sim, device, engine, meters


class TestComputeEngine:
    def test_in_ssd_uses_dram_not_pcie(self):
        sim, device, engine, meters = make_engine("bg2")

        def proc(sim):
            yield from engine.compute_batch(32)

        sim.process(proc(sim))
        sim.run()
        assert meters.get("dram_bytes") > 0
        assert meters.get("pcie_bytes") == 0
        assert device.pcie.bytes_moved == 0

    def test_discrete_ships_features_over_pcie(self):
        sim, device, engine, meters = make_engine("cc")

        def proc(sim):
            yield from engine.compute_batch(32)

        sim.process(proc(sim))
        sim.run()
        assert meters.get("pcie_bytes") == engine.batch_feature_bytes(32)
        assert device.pcie.bytes_moved > 0

    def test_batch_feature_bytes_formula(self):
        _sim, _device, engine, _meters = make_engine("cc")
        # 40 tree positions x 128 dims x 2 bytes per target
        assert engine.batch_feature_bytes(1) == 40 * 128 * 2
        assert engine.batch_feature_bytes(64) == 64 * 40 * 128 * 2

    def test_accel_meters_populated(self):
        sim, _device, engine, meters = make_engine("bg2")

        def proc(sim):
            yield from engine.compute_batch(16)

        sim.process(proc(sim))
        sim.run()
        assert meters.get("accel_busy_s") > 0
        assert meters.get("accel_macs") > 0
        assert meters.get("accel_energy_j") > 0

    def test_discrete_accelerator_computes_faster(self):
        _sim, _d, ssd_engine, _m = make_engine("bg2")
        _sim2, _d2, tpu_engine, _m2 = make_engine("cc")
        assert tpu_engine.plan(128).seconds < ssd_engine.plan(128).seconds

    def test_compute_time_scales_with_batch(self):
        _sim, _d, engine, _m = make_engine("bg2")
        assert engine.plan(256).seconds > engine.plan(32).seconds
