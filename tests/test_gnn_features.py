"""Tests for dense and procedural feature tables."""

import numpy as np
import pytest

from repro.gnn import DenseFeatureTable, ProceduralFeatureTable


class TestDenseFeatureTable:
    def test_shape_and_dtype(self):
        table = DenseFeatureTable.random(10, 6, seed=0)
        assert table.num_nodes == 10
        assert table.dim == 6
        vec = table.vector(3)
        assert vec.shape == (6,)
        assert vec.dtype == np.float16

    def test_bytes_per_vector(self):
        table = DenseFeatureTable.random(4, 128, seed=0)
        assert table.bytes_per_vector == 256

    def test_gather(self):
        table = DenseFeatureTable.random(10, 4, seed=0)
        out = table.gather([1, 1, 2])
        assert out.shape == (3, 4)
        assert np.array_equal(out[0], out[1])

    def test_gather_empty(self):
        table = DenseFeatureTable.random(10, 4, seed=0)
        assert table.gather([]).shape == (0, 4)

    def test_bounds(self):
        table = DenseFeatureTable.random(5, 2, seed=0)
        with pytest.raises(IndexError):
            table.vector(5)
        with pytest.raises(IndexError):
            table.vector(-1)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            DenseFeatureTable(np.zeros(5, dtype=np.float16))


class TestProceduralFeatureTable:
    def test_deterministic_per_node(self):
        table = ProceduralFeatureTable(1000, 16, seed=7)
        assert np.array_equal(table.vector(42), table.vector(42))

    def test_distinct_nodes_differ(self):
        table = ProceduralFeatureTable(1000, 16, seed=7)
        assert not np.array_equal(table.vector(1), table.vector(2))

    def test_seed_changes_features(self):
        a = ProceduralFeatureTable(10, 8, seed=1)
        b = ProceduralFeatureTable(10, 8, seed=2)
        assert not np.array_equal(a.vector(0), b.vector(0))

    def test_huge_table_costs_no_memory(self):
        # Table III scale: hundreds of millions of nodes
        table = ProceduralFeatureTable(370_500_000, 200, seed=0)
        vec = table.vector(370_500_000 - 1)
        assert vec.shape == (200,)

    def test_bounds(self):
        table = ProceduralFeatureTable(5, 2, seed=0)
        with pytest.raises(IndexError):
            table.vector(5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProceduralFeatureTable(0, 4)
        with pytest.raises(ValueError):
            ProceduralFeatureTable(4, 0)
