#!/usr/bin/env python3
"""Quickstart: simulate BeaconGNN-2.0 on a scaled amazon-style workload.

Builds the DirectGraph image, runs three pipelined mini-batches on the
BG-2 platform, and verifies that the subgraphs the in-storage engine
samples are exactly the reference GraphSage subgraphs.

Run:  python examples/quickstart.py
"""

from repro.gnn import sample_minibatch
from repro.isc import GnnTaskConfig, run_in_storage_sampling
from repro.platforms import PreparedWorkload, run_platform
from repro.workloads import workload_by_name


def main() -> None:
    # 1. Instantiate a Table III workload at laptop scale (same degree
    #    distribution and feature dimension, fewer nodes).
    spec = workload_by_name("amazon").scaled(4096)
    prepared = PreparedWorkload.prepare(spec)
    print(f"workload: {spec.name}  nodes={spec.num_nodes}  "
          f"avg_degree={spec.avg_degree}  feature_dim={spec.feature_dim}")
    print(f"DirectGraph: {prepared.image.num_pages} flash pages, "
          f"{prepared.image.stats.internal_waste_fraction * 100:.1f}% internal waste")

    # 2. Simulate BeaconGNN-2.0 (out-of-order streaming, die samplers,
    #    channel routers, in-SSD spatial accelerator).
    result = run_platform("bg2", prepared, batch_size=64, num_batches=3)
    print(f"\nBG-2 throughput : {result.throughput_targets_per_sec:,.0f} targets/s")
    print(f"mean prep       : {result.mean_prep_seconds * 1e6:.1f} us/batch")
    print(f"mean compute    : {result.mean_compute_seconds * 1e6:.1f} us/batch")
    print(f"active dies     : {result.mean_active_dies():.1f} / 128")
    print(f"hop overlap     : {result.hop_timeline.overlap_fraction() * 100:.0f}%")
    print(f"energy          : {result.meters.get('targets_per_joule'):,.0f} targets/J "
          f"at {result.meters.get('energy_watts'):.1f} W")

    # 3. Correctness: the out-of-order in-storage execution samples
    #    exactly the same subgraphs as the in-order reference sampler.
    task = GnnTaskConfig(num_hops=3, fanout=3, feature_dim=spec.feature_dim, seed=0)
    targets = [5, 17, 99, 256]
    in_storage = run_in_storage_sampling(prepared.image, task, targets)
    reference = sample_minibatch(prepared.graph, targets, task.fanouts, seed=0)
    for ref in reference:
        assert in_storage.subgraphs[ref.target].canonical() == ref.canonical()
    print(f"\nverified: {len(targets)} in-storage subgraphs match the "
          f"reference sampler exactly")
    print(f"channel traffic saved by die-level sampling: "
          f"{in_storage.channel_traffic_saving * 100:.1f}%")


if __name__ == "__main__":
    main()
