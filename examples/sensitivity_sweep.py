#!/usr/bin/env python3
"""Sweep one architecture knob across platforms (a slice of Figure 18).

Run:  python examples/sensitivity_sweep.py [knob]
      knobs: bandwidth | cores | channels | dies | batch | pagesize
"""

import sys

from repro.bench import format_table
from repro.platforms import PreparedWorkload, run_platform
from repro.ssd import ull_ssd
from repro.workloads import workload_by_name

PLATFORMS = ["bg1", "bg_dgsp", "bg2"]

SWEEPS = {
    "bandwidth": [
        (f"{v} MB/s", ull_ssd().with_flash(channel_bandwidth_bps=v * 1e6), {})
        for v in (333, 800, 1600, 2400)
    ],
    "cores": [
        (f"{v} cores", ull_ssd().with_firmware(num_cores=v), {})
        for v in (1, 2, 4, 8)
    ],
    "channels": [
        (f"{v} ch", ull_ssd().with_flash(num_channels=v), {})
        for v in (4, 8, 16, 32)
    ],
    "dies": [
        (f"{v} dies/ch", ull_ssd().with_flash(dies_per_channel=v), {})
        for v in (2, 4, 8, 16)
    ],
    "batch": [
        (f"batch {v}", None, {"batch_size": v}) for v in (32, 64, 128, 256)
    ],
    "pagesize": [
        (f"{v} B", ull_ssd().with_flash(page_size=v), {})
        for v in (2048, 4096, 8192)
    ],
}


def main() -> None:
    knob = sys.argv[1] if len(sys.argv) > 1 else "cores"
    if knob not in SWEEPS:
        raise SystemExit(f"unknown knob {knob!r}; choose from {sorted(SWEEPS)}")

    spec = workload_by_name("amazon").scaled(2048)
    prepared_cache = {}

    rows = []
    for label, config, extra in SWEEPS[knob]:
        page_size = config.flash.page_size if config else 4096
        if page_size not in prepared_cache:
            prepared_cache[page_size] = PreparedWorkload.prepare(
                spec, page_size=page_size
            )
        row = [label]
        for platform in PLATFORMS:
            kwargs = dict(batch_size=32, num_batches=2)
            kwargs.update(extra)
            result = run_platform(
                platform, prepared_cache[page_size], ssd_config=config, **kwargs
            )
            row.append(f"{result.throughput_targets_per_sec:,.0f}")
        rows.append(row)
        print(f"  simulated {label}")

    print()
    print(
        format_table(
            [knob] + [f"{p} targets/s" for p in PLATFORMS],
            rows,
            title=f"Figure 18-style sweep: {knob} (amazon)",
        )
    )


if __name__ == "__main__":
    main()
