#!/usr/bin/env python3
"""DirectGraph maintenance over a device lifetime (Section VI-F + updates).

Walks the long-running-device story: deploy a DirectGraph with growth
slots, apply in-place edge additions, detect and repair a retention
error by scrubbing, then — after regular-I/O churn wears the rest of the
device — reclaim the DirectGraph onto fresh blocks with every embedded
physical address rewritten.

Run:  python examples/maintenance_lifecycle.py
"""

from repro.directgraph import (
    DirectGraphReader,
    DirectGraphUpdater,
    FormatSpec,
    build_directgraph,
    verify_image,
)
from repro.gnn import DenseFeatureTable, power_law_graph
from repro.ssd import FlashConfig, Ftl, Scrubber, WearReclaimer
from repro.ssd.reliability import relocate_image


def main() -> None:
    # --- deploy with growth slots -------------------------------------------
    graph = power_law_graph(300, 20.0, seed=5)
    features = DenseFeatureTable.random(graph.num_nodes, 16, seed=0)
    spec = FormatSpec(page_size=1024, feature_dim=16, growth_slots=2)
    image = build_directgraph(graph, features, spec)

    config = FlashConfig(page_size=1024, pages_per_block=8)
    ftl = Ftl(config, total_blocks=256)
    blocks_needed = -(-image.num_pages // ftl.pages_per_block) + 2  # spares
    blocks = ftl.reserve_blocks(blocks_needed)
    ppas = ftl.ppa_list(blocks)
    image = relocate_image(
        image, {i: ppas[i] for i in range(image.num_pages)}
    )
    spares = ppas[image.num_pages :]
    print(f"deployed {image.num_pages} pages into {len(blocks)} reserved "
          f"blocks ({len(spares)} spare pages for updates)")

    # --- in-place edge additions -----------------------------------------------
    updater = DirectGraphUpdater(image, spare_ppas=spares)
    updater.add_neighbors(7, [100, 101, 102])
    updater.add_neighbors(42, [5, 6])
    stats = updater.stats
    print(f"updates: {stats.edges_added} edges added, "
          f"{stats.sections_extended} sections extended, "
          f"{stats.sections_created} created "
          f"({stats.growth_slots_consumed} growth slots used), "
          f"{stats.pages_rewritten} pages re-programmed")
    reader = DirectGraphReader(image)
    assert reader.neighbors(7)[-3:] == [100, 101, 102]
    assert verify_image(image).ok

    # --- scrubbing repairs a retention error -------------------------------------
    scrubber = Scrubber(image, pages_per_block=ftl.pages_per_block)
    victim = image.page_plans[3].page_index
    scrubber.inject_bit_error(victim, byte_offset=200)
    report = scrubber.scrub()
    print(f"scrub: {report.pages_checked} pages checked, "
          f"{report.errors_found} error found, blocks "
          f"{report.blocks_reprogrammed} re-programmed")
    assert scrubber.page_is_clean(victim)

    # --- wear reclamation after regular-I/O churn ---------------------------------
    reclaimer = WearReclaimer(ftl, threshold=3)
    churn = 0
    while not reclaimer.should_reclaim():
        ftl.write(churn % 50)
        churn += 1
    print(f"wear gap reached threshold after {churn} regular writes "
          f"(gap = {ftl.wear_gap()} P/E cycles)")
    new_image, new_blocks = reclaimer.reclaim(image, blocks)
    print(f"reclaimed: DirectGraph migrated to blocks "
          f"{new_blocks[0]}..{new_blocks[-1]}; old blocks rejoined the FTL")

    # everything still reads correctly at the new physical locations
    reader = DirectGraphReader(new_image)
    expected = [int(x) for x in graph.neighbors(7)] + [100, 101, 102]
    assert reader.neighbors(7) == expected
    assert verify_image(new_image).ok
    print("verified: updated + scrubbed + relocated DirectGraph intact")


if __name__ == "__main__":
    main()
