#!/usr/bin/env python3
"""Section VIII extensions: storage arrays and real-time GNN queries.

Part 1 scales a BeaconGNN array from 1 to 8 SSDs and reports the
near-linear throughput growth the paper projects. Part 2 measures
small-batch inference latency, where BeaconGNN's single host round trip
shines against the CPU-centric baseline.

Run:  python examples/scaleout_and_queries.py
"""

from repro.bench import format_table
from repro.platforms import (
    PreparedWorkload,
    measure_query_latency,
    run_scaleout,
)
from repro.workloads import workload_by_name


def main() -> None:
    prepared = PreparedWorkload.prepare(workload_by_name("amazon").scaled(2048))

    # --- Part 1: computational storage array ---------------------------------
    rows = []
    single = None
    for devices in (1, 2, 4, 8):
        array = run_scaleout(
            devices, "bg2", prepared, batch_size=64, num_batches=2,
            cross_partition_fraction=0.1,
        )
        if single is None:
            single = array
        rows.append(
            (
                devices,
                f"{array.throughput_targets_per_sec:,.0f}",
                round(array.scaling_efficiency(single), 2),
                round(array.p2p_seconds_per_batch * 1e6, 1),
            )
        )
    print(
        format_table(
            ["SSDs", "targets/s", "scaling efficiency", "P2P us/batch"],
            rows,
            title="BeaconGNN array scale-out (amazon, 10% cross-partition)",
        )
    )

    # --- Part 2: GNN query latency -------------------------------------------
    print()
    rows = []
    for platform in ("cc", "bg1", "bg2"):
        result = measure_query_latency(
            platform, prepared, num_queries=5, batch_size=1
        )
        rows.append(
            (
                platform,
                round(result.mean_s * 1e6, 1),
                round(result.p99_s * 1e6, 1),
            )
        )
    print(
        format_table(
            ["platform", "mean latency (us)", "p99 latency (us)"],
            rows,
            title="Single-query (batch=1) inference latency",
        )
    )


if __name__ == "__main__":
    main()
