#!/usr/bin/env python3
"""End-to-end functional GNN step over DirectGraph-sampled subgraphs.

Shows that the accelerated pipeline computes the *same embeddings* as a
plain host-side GraphSage forward pass: in-storage sampling produces the
exact reference subgraphs, and the vector_sum + perceptron model runs on
the features read back from flash pages.

Run:  python examples/gnn_training_step.py
"""

import numpy as np

from repro.directgraph import DirectGraphReader, FormatSpec, build_directgraph
from repro.gnn import (
    DenseFeatureTable,
    GnnModel,
    power_law_graph,
    sample_minibatch,
)
from repro.isc import GnnTaskConfig, run_in_storage_sampling


def main() -> None:
    dim, hidden, hops, fanout = 16, 32, 3, 3
    graph = power_law_graph(1000, 20.0, seed=3)
    features = DenseFeatureTable.random(graph.num_nodes, dim, seed=0)
    model = GnnModel.random(dim, hidden, hops, seed=1)

    spec = FormatSpec(page_size=4096, feature_dim=dim)
    image = build_directgraph(graph, features, spec)
    task = GnnTaskConfig(num_hops=hops, fanout=fanout, feature_dim=dim, seed=9)

    targets = [3, 77, 512]

    # --- path A: host-side reference ------------------------------------
    ref_subgraphs = sample_minibatch(graph, targets, task.fanouts, seed=9)
    ref_out = model.forward_minibatch(ref_subgraphs, features)

    # --- path B: in-storage sampling + flash-resident features ----------
    run = run_in_storage_sampling(image, task, targets)
    reader = DirectGraphReader(image)

    class FlashFeatures:
        """Feature vectors decoded from the DirectGraph flash pages."""

        num_nodes, dim = graph.num_nodes, features.dim

        def vector(self, node: int) -> np.ndarray:
            return reader.feature(node)

    isc_subgraphs = [run.subgraphs[t] for t in targets]
    isc_out = model.forward_minibatch(isc_subgraphs, FlashFeatures())

    # --- identical results ------------------------------------------------
    assert np.array_equal(ref_out, isc_out)
    print(f"targets {targets}: embeddings identical across both paths")
    print(f"embedding shape {isc_out.shape}, dtype {isc_out.dtype}")
    print(f"in-storage page reads: {run.page_reads} "
          f"({run.page_reads // len(targets)} per 40-position subgraph)")
    print(f"channel traffic saved by on-die sampling: "
          f"{run.channel_traffic_saving * 100:.1f}%")
    print("\nfirst target embedding (first 8 dims):")
    print(" ", np.array2string(isc_out[0][:8].astype(np.float32), precision=3))


if __name__ == "__main__":
    main()
