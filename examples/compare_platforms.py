#!/usr/bin/env python3
"""Compare all nine platforms on one workload (a miniature Figure 14).

Run:  python examples/compare_platforms.py [workload] [scaled_nodes]
      e.g. python examples/compare_platforms.py reddit 2048
"""

import sys

from repro.bench import format_table
from repro.platforms import PLATFORMS, PreparedWorkload, run_platform
from repro.workloads import workload_by_name


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "amazon"
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 2048
    spec = workload_by_name(workload).scaled(nodes)
    prepared = PreparedWorkload.prepare(spec)

    rows = []
    base = None
    for name in ("cc", "glist", "smartsage", "bg1", "bg_dg", "bg_sp", "bg_dgsp", "bg2"):
        result = run_platform(name, prepared, batch_size=32, num_batches=2)
        thr = result.throughput_targets_per_sec
        if base is None:
            base = thr
        rows.append(
            (
                name,
                f"{thr:,.0f}",
                round(thr / base, 2),
                round(result.mean_prep_seconds * 1e6, 1),
                round(result.mean_active_dies(), 1),
                round(result.hop_timeline.overlap_fraction(), 2),
                f"{result.meters.get('targets_per_joule'):,.0f}",
            )
        )
        print(f"  simulated {name}: {PLATFORMS[name].description}")

    print()
    print(
        format_table(
            [
                "platform",
                "targets/s",
                "x CC",
                "prep us",
                "active dies",
                "hop overlap",
                "targets/J",
            ],
            rows,
            title=f"Platform comparison on {workload} ({nodes} nodes)",
        )
    )


if __name__ == "__main__":
    main()
