#!/usr/bin/env python3
"""The complete host <-> SSD BeaconGNN protocol, end to end.

Walks the Section VI system-support flow over the functional NVMe stack:
reserve physical blocks, convert + flush the DirectGraph (with the
firmware verifying containment of every embedded address), configure the
task and model, run mini-batches in acceleration mode while regular I/O
gets deferred, and finally prove the returned embeddings equal a
host-side reference computation.

Run:  python examples/full_protocol.py
"""

import numpy as np

from repro.directgraph import FormatSpec
from repro.gnn import DenseFeatureTable, GnnModel, power_law_graph, sample_minibatch
from repro.host import BeaconHost, CommandFailed, NvmeDriver
from repro.isc import GnnTaskConfig
from repro.ssd import FlashConfig
from repro.ssd.firmware_runtime import FirmwareRuntime
from repro.ssd.nvme import Opcode, QueuePair, Status

DIM = 16


def main() -> None:
    # --- the stack: host driver <-> queue pair <-> firmware runtime --------
    queue = QueuePair(depth=32)
    flash = FlashConfig(page_size=4096, pages_per_block=16)
    firmware = FirmwareRuntime(
        queue,
        flash=flash,
        total_blocks=1024,
        format_spec=FormatSpec(page_size=4096, feature_dim=DIM),
    )
    host = BeaconHost(NvmeDriver(queue, firmware))

    # --- deployment (Section VI-A/B) ----------------------------------------
    graph = power_law_graph(600, 25.0, seed=2)
    features = DenseFeatureTable.random(graph.num_nodes, DIM, seed=0)
    info = host.deploy(graph, features)
    print(f"deployed: {info.pages_flushed} pages into blocks "
          f"{info.blocks[0]}..{info.blocks[-1]} "
          f"({firmware.flush_rejections} flushes rejected)")

    # --- a malicious flush is denied (Section VI-E) ---------------------------
    try:
        host.driver.call(
            Opcode.BEACON_FLUSH_PAGE, lba=999_999, payload=bytes(4096)
        )
    except CommandFailed as err:
        print(f"malicious flush denied: {err.completion.status.name}")

    # --- task + model (Section VI-D) -------------------------------------------
    task = GnnTaskConfig(num_hops=3, fanout=3, feature_dim=DIM, seed=7)
    model = GnnModel.random(DIM, 32, 3, seed=1)
    host.configure(task, model)

    # --- mini-batches, with regular I/O interleaved (Section VI-G) -------------
    host.driver.write(5, b"regular data")
    targets = [10, 200, 399]
    result = host.run_minibatch(targets)
    print(f"mini-batch: {result.page_reads} page reads, "
          f"{len(result.subgraphs)} subgraphs, mode back to {firmware.mode}")
    assert host.driver.read(5) == b"regular data"

    # --- equivalence against the host-side reference ----------------------------
    reference = sample_minibatch(graph, targets, task.fanouts, seed=7)
    for ref in reference:
        assert result.subgraphs[ref.target].canonical() == ref.canonical()
        expected = model.forward_subgraph(ref, features)
        assert np.array_equal(result.embeddings[ref.target], expected)
    print(f"verified: {len(targets)} in-storage embeddings equal the "
          f"host-side reference bit for bit")
    emb = result.embeddings[targets[0]]
    print(f"embedding[{targets[0]}][:6] = "
          f"{np.array2string(emb[:6].astype(np.float32), precision=3)}")


if __name__ == "__main__":
    main()
