#!/usr/bin/env python3
"""Inspect a DirectGraph image: page layout, sections, and security checks.

Builds a small DirectGraph, dumps the layout of the first few pages,
verifies address containment (Section VI-E), demonstrates scrubbing
(Section VI-F), and reports storage inflation (Table IV).

Run:  python examples/directgraph_inspect.py
"""

from repro.directgraph import (
    DirectGraphReader,
    FormatSpec,
    PrimarySectionView,
    build_directgraph,
    decode_page,
    verify_image,
)
from repro.gnn import DenseFeatureTable, power_law_graph
from repro.ssd import Scrubber


def main() -> None:
    graph = power_law_graph(400, 60.0, seed=7)
    features = DenseFeatureTable.random(graph.num_nodes, dim=32, seed=0)
    spec = FormatSpec(page_size=4096, feature_dim=32)
    image = build_directgraph(graph, features, spec)

    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"(avg degree {graph.average_degree:.1f})")
    print(f"image: {image.stats.num_primary_pages} primary + "
          f"{image.stats.num_secondary_pages} secondary pages")
    raw = graph.num_nodes * features.bytes_per_vector + graph.num_edges * 4
    print(f"raw size {raw / 1024:.1f} KiB -> DirectGraph "
          f"{image.stats.total_bytes / 1024:.1f} KiB "
          f"(inflation {image.stats.inflation_vs_raw(raw) * 100:.1f}%)")

    print("\nfirst three pages:")
    for page_index in range(min(3, image.num_pages)):
        decoded = decode_page(spec, image.page_bytes(page_index))
        kind = "primary" if decoded.page_type == 1 else "secondary"
        print(f"  page {page_index} ({kind}): {len(decoded.sections)} sections")
        for i, section in enumerate(decoded.sections):
            if isinstance(section, PrimarySectionView):
                print(
                    f"    [{i}] primary  node={section.node_id:5d} "
                    f"degree={section.neighbor_count:4d} "
                    f"inline={section.n_inline:4d} "
                    f"secondaries={len(section.secondary_addrs)}"
                )
            else:
                print(
                    f"    [{i}] overflow node={section.node_id:5d} "
                    f"entries={section.neighbor_count:4d}"
                )

    # navigation round-trip
    reader = DirectGraphReader(image)
    node = 42
    assert reader.neighbors(node) == [int(x) for x in graph.neighbors(node)]
    print(f"\nround-trip: node {node} neighbor list matches the source graph")

    # Section VI-E: every embedded address stays inside the image's blocks
    report = verify_image(image)
    print(f"security verification: {'CLEAN' if report.ok else report.violations}")

    # Section VI-F: scrubbing catches and repairs a retention error
    scrubber = Scrubber(image, pages_per_block=4)
    scrubber.inject_bit_error(0, byte_offset=512)
    result = scrubber.scrub()
    print(f"scrubbing: {result.errors_found} error found, "
          f"block(s) {result.blocks_reprogrammed} re-programmed, "
          f"page clean again: {scrubber.page_is_clean(0)}")


if __name__ == "__main__":
    main()
